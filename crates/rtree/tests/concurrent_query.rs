//! Concurrency stress for the parallel query path.
//!
//! A packed 100k-entry tree is queried by 8 threads through a deliberately
//! tiny sharded pool (16 pages — far below the working set), so every
//! pathology the sharded design must survive is constantly exercised:
//! concurrent misses and installs, evictions of pages other threads are
//! reading, and in-flight read coalescing. Correctness is judged against a
//! single-threaded oracle; the same workload then runs over a `FaultDisk`
//! schedule so the error paths hardened in the fault-injection PR are hit
//! *concurrently* too.

use std::sync::Arc;

use geom::{Point, Rect};
use rand::{Rng, SeedableRng};
use rtree::{BatchQuery, BulkLoader, Entry, NodeCapacity, QueryExecutor, RTree};
use storage::{
    Disk, FaultDisk, FaultKind, FaultOp, FaultSpec, MemDisk, ShardedBufferPool, Trigger,
};

const ENTRIES: usize = 100_000;
const POOL_PAGES: usize = 16;
const THREADS: usize = 8;

fn uniform_entries(n: usize, seed: u64) -> Vec<Entry<2>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x: f64 = rng.gen_range(0.0..0.99);
            let y: f64 = rng.gen_range(0.0..0.99);
            let s: f64 = rng.gen_range(0.0..0.01);
            Entry::data(Rect::new([x, y], [x + s, y + s]), i as u64)
        })
        .collect()
}

/// STR ordering (paper §4): sort by x, carve into vertical slabs of
/// `slab` entries, sort each slab by y. Applied per level by the bulk
/// loader.
fn str_order(entries: &mut [Entry<2>], cap: usize) {
    entries.sort_by(|a, b| a.rect.center_coord(0).total_cmp(&b.rect.center_coord(0)));
    let n = entries.len();
    let leaves = n.div_ceil(cap);
    let slabs = (leaves as f64).sqrt().ceil() as usize;
    let slab = slabs.max(1) * cap;
    for chunk in entries.chunks_mut(slab) {
        chunk.sort_by(|a, b| a.rect.center_coord(1).total_cmp(&b.rect.center_coord(1)));
    }
}

fn packed_tree(disk: Arc<dyn Disk>, entries: Vec<Entry<2>>) -> RTree<2> {
    let cap = NodeCapacity::new(100).unwrap();
    // Build with a roomy pool setting… the pool is bypassed by the
    // streaming build path anyway; what matters is the capacity we
    // squeeze it to afterwards.
    let pool = Arc::new(ShardedBufferPool::for_threads(disk, 512, THREADS));
    let tree = BulkLoader::new(cap)
        .load(pool, entries, &mut |es: &mut Vec<Entry<2>>, _| {
            str_order(es, 100)
        })
        .unwrap();
    tree.pool().set_capacity(POOL_PAGES).unwrap();
    tree.pool().reset_stats();
    tree
}

fn mixed_queries(n: usize, seed: u64) -> Vec<BatchQuery<2>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                let p: [f64; 2] = [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
                BatchQuery::Point(Point::from(p))
            } else {
                let cx: f64 = rng.gen_range(0.0..1.0);
                let cy: f64 = rng.gen_range(0.0..1.0);
                let e: f64 = rng.gen_range(0.005..0.05);
                BatchQuery::Region(Rect::new(
                    [(cx - e).max(0.0), (cy - e).max(0.0)],
                    [(cx + e).min(1.0), (cy + e).min(1.0)],
                ))
            }
        })
        .collect()
}

#[test]
fn eight_threads_on_sixteen_pages_match_oracle() {
    let tree = packed_tree(
        Arc::new(MemDisk::default_size()),
        uniform_entries(ENTRIES, 7),
    );
    let queries = mixed_queries(256, 8);
    let exec = QueryExecutor::new(&tree);

    let oracle = exec.run_batch(&queries, 1).unwrap();
    assert!(oracle.total_matches() > 0, "degenerate workload");

    let par = exec.run_batch(&queries, THREADS).unwrap();
    assert_eq!(par.threads, THREADS);
    assert_eq!(
        par.results, oracle.results,
        "parallel results diverged from the single-threaded oracle"
    );
    // The pool is 16 pages against a >1000-page tree: the batch cannot
    // avoid misses, and the miss count stays exact under concurrency.
    assert!(par.stats.misses > 0);
    assert_eq!(tree.pool().pinned_count(), 0, "a query leaked a pin");
}

#[test]
fn stress_under_fault_schedule_stays_consistent() {
    let mem: Arc<dyn Disk> = Arc::new(MemDisk::default_size());
    let faulted = Arc::new(FaultDisk::new(mem));
    // Build cleanly, then arm: every 97th read errors — with a 16-page
    // pool over 100k entries that's a steady drizzle of failures in the
    // middle of concurrent traversals.
    faulted.set_armed(false);
    let tree = packed_tree(
        faulted.clone() as Arc<dyn Disk>,
        uniform_entries(ENTRIES, 9),
    );
    faulted.push(FaultSpec {
        op: FaultOp::Read,
        kind: FaultKind::Error,
        trigger: Trigger::EveryNth(97),
    });
    faulted.set_armed(true);

    let queries = mixed_queries(192, 10);
    // Workers run independent slices so one injected error does not
    // abort the whole batch; successes must still agree with the oracle.
    let outcomes: Vec<Vec<Option<usize>>> = std::thread::scope(|scope| {
        queries
            .chunks(queries.len() / THREADS)
            .map(|chunk| {
                let tree = &tree;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|q| {
                            let res = match q {
                                BatchQuery::Region(r) => tree.query_region(r),
                                BatchQuery::Point(p) => tree.query_point(p),
                            };
                            res.ok().map(|hits| hits.len())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let flat: Vec<Option<usize>> = outcomes.into_iter().flatten().collect();
    assert_eq!(flat.len(), queries.len());
    assert!(flat.iter().any(Option::is_some), "every query failed");
    assert!(
        faulted.total_fired() > 0,
        "fault schedule never fired; the test proves nothing"
    );
    assert_eq!(tree.pool().pinned_count(), 0, "error path leaked a pin");

    // Disarm and re-run everything single-threaded: the pool must have
    // cached no partial or poisoned state, so every query now succeeds
    // and matches a fresh oracle.
    faulted.set_armed(false);
    let exec = QueryExecutor::new(&tree);
    let healed = exec.run_batch(&queries, 1).unwrap();
    for (i, (prev, now)) in flat.iter().zip(healed.results.iter()).enumerate() {
        if let Some(len) = prev {
            assert_eq!(*len, now.len(), "query {i} changed answer after faults");
        }
    }
    assert_eq!(tree.pool().pinned_count(), 0);
}
