//! Crash recovery: WAL replay plus an orphaned-page sweep.
//!
//! The storage layer's replay ([`storage::wal::replay`]) restores every
//! committed transaction's page images and advances the superblock
//! watermark — after it, every cataloged tree is exactly the state its
//! last committed transaction produced. What replay cannot know is
//! which *allocated* pages ended up referenced: a crash strands pages
//! in two ways — allocations whose transaction never committed, and
//! copy-on-write shadow sources superseded by a committed transaction
//! but not yet handed to the free chain. Both are unreachable from
//! every tree, so the sweep here reclaims them, upgrading the crash
//! contract from "leaks at worst" to "no leaked or double-allocated
//! pages".
//!
//! The full sequence:
//!
//! 1. replay the log into the file (idempotent, keyed on the
//!    superblock's `wal_applied_lsn`);
//! 2. account every page: superblock, free chain, each cataloged
//!    tree's meta page and reachable nodes (kind-aware, same walk as
//!    the fsck audit);
//! 3. chain every unaccounted page onto the persistent free list;
//! 4. reset the log — everything it held is now on the media.

use std::collections::HashSet;
use std::sync::Arc;

use storage::wal::{replay, reset_log, LogStore, ReplayReport};
use storage::{Disk, PageAllocator, PageId};

use crate::fsck::entry_layout;
use crate::store::{self, HEADER_LEN};
use crate::{RTreeError, Result};

/// What [`recover`] did.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The storage-layer replay outcome (transactions applied, torn
    /// tail, watermark).
    pub replay: ReplayReport,
    /// Cataloged trees walked by the sweep.
    pub trees: u64,
    /// Pages accounted as live (reachable, free, or metadata).
    pub pages_accounted: u64,
    /// Stranded pages the sweep returned to the free chain.
    pub pages_reclaimed: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replayed {} of {} txns (watermark {} -> {}{}), swept {} trees: \
             {} pages accounted, {} reclaimed",
            self.replay.txns_applied,
            self.replay.txns_scanned,
            self.replay.start_lsn,
            self.replay.applied_lsn,
            if self.replay.torn.is_some() {
                ", torn tail discarded"
            } else {
                ""
            },
            self.trees,
            self.pages_accounted,
            self.pages_reclaimed,
        )
    }
}

/// Recover a v2 file from its write-ahead log: replay committed
/// transactions, sweep stranded pages onto the free chain, and reset
/// the log. Idempotent — running it twice (or on a cleanly closed
/// file) is harmless.
pub fn recover(disk: &Arc<dyn Disk>, log: &dyn LogStore) -> Result<RecoveryReport> {
    let replay = replay(disk, log)?;
    let alloc = PageAllocator::open(disk.clone())?;

    let mut accounted: HashSet<PageId> = HashSet::new();
    accounted.insert(PageId(0));
    accounted.extend(alloc.free_list()?);

    let trees = alloc.trees();
    let tree_count = trees.len() as u64;
    for entry in &trees {
        accounted.insert(entry.meta_page);
        let meta = match store::read_tree_meta(disk.as_ref(), &alloc, &entry.name) {
            Ok(meta) => meta,
            Err(e) => {
                return Err(RTreeError::Corrupt {
                    page: entry.meta_page,
                    reason: format!(
                        "tree '{}': meta unreadable during recovery: {e}",
                        entry.name
                    ),
                })
            }
        };
        let Some((entry_size, child_off)) = entry_layout(meta.kind, meta.dims) else {
            return Err(RTreeError::Corrupt {
                page: entry.meta_page,
                reason: format!("tree '{}': unknown kind {}", entry.name, meta.kind),
            });
        };
        walk_tree(
            disk.as_ref(),
            meta.root,
            entry_size,
            child_off,
            &mut accounted,
        )?;
    }

    let total = disk.num_pages();
    let mut stranded: Vec<PageId> = Vec::new();
    for i in 0..total {
        let p = PageId(i);
        if !accounted.contains(&p) {
            stranded.push(p);
        }
    }
    if !stranded.is_empty() {
        alloc.free_pages(&stranded)?;
        disk.sync()?;
    }
    reset_log(log)?;

    Ok(RecoveryReport {
        replay,
        trees: tree_count,
        pages_accounted: accounted.len() as u64,
        pages_reclaimed: stranded.len() as u64,
    })
}

/// Reachability walk of one tree straight off the disk (no buffer pool
/// — recovery runs before any pool exists). Kind-agnostic like the
/// fsck audit: the shared node header gives level and entry count, the
/// layout gives the child-pointer offset.
fn walk_tree(
    disk: &dyn Disk,
    root: PageId,
    entry_size: usize,
    child_off: usize,
    accounted: &mut HashSet<PageId>,
) -> Result<()> {
    let total = disk.num_pages();
    let mut page = vec![0u8; disk.page_size()];
    let mut stack = vec![root];
    while let Some(p) = stack.pop() {
        if p.index() >= total || !accounted.insert(p) {
            continue;
        }
        disk.read_page(p, &mut page)?;
        if page.len() < HEADER_LEN {
            continue;
        }
        let level = u32::from_le_bytes(page[4..8].try_into().unwrap());
        let count = u32::from_le_bytes(page[8..12].try_into().unwrap()) as usize;
        let need = HEADER_LEN.saturating_add(count.saturating_mul(entry_size));
        if level == 0 || need > page.len() {
            continue;
        }
        for i in 0..count {
            let off = HEADER_LEN + i * entry_size + child_off;
            let child = u64::from_le_bytes(page[off..off + 8].try_into().unwrap());
            stack.push(PageId(child));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeCapacity, RTree};
    use geom::Rect;
    use storage::{BufferPool, MemDisk, MemLogStore, Wal, WalOptions};

    fn square(i: u64) -> Rect<2> {
        let x = (i % 32) as f64 / 32.0;
        let y = (i / 32) as f64 / 32.0;
        Rect::new([x, y], [x + 0.02, y + 0.02])
    }

    #[test]
    fn recover_after_clean_session_is_a_noop() {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::default_size());
        let log = MemLogStore::new();
        {
            let pool = Arc::new(BufferPool::new(disk.clone(), 64));
            let mut tree = RTree::<2>::create(pool, NodeCapacity::new(8).unwrap()).unwrap();
            let wal = Wal::create(log.clone(), 1, WalOptions::default()).unwrap();
            tree.attach_wal(wal).unwrap();
            for i in 0..100 {
                tree.insert(square(i), i).unwrap();
            }
            tree.persist().unwrap();
        }
        let report = recover(&disk, log.as_ref()).unwrap();
        assert_eq!(report.replay.txns_applied, 0, "checkpoint covered it all");
        assert_eq!(report.pages_reclaimed, 0, "clean close leaks nothing");

        let pool = Arc::new(BufferPool::new(disk.clone(), 64));
        let tree = RTree::<2>::open(pool).unwrap();
        assert_eq!(tree.len(), 100);
        assert!(tree.check().is_clean());
    }

    #[test]
    fn recover_replays_unpersisted_commits_and_reclaims_strands() {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::default_size());
        let log = MemLogStore::new();
        {
            let pool = Arc::new(BufferPool::new(disk.clone(), 64));
            let mut tree = RTree::<2>::create(pool, NodeCapacity::new(8).unwrap()).unwrap();
            let wal = Wal::create(log.clone(), 1, WalOptions::default()).unwrap();
            tree.attach_wal(wal).unwrap();
            for i in 0..100 {
                tree.insert(square(i), i).unwrap();
            }
            // No persist: the pool's dirty pages are lost with the
            // "process"; only the WAL survives.
        }
        let report = recover(&disk, log.as_ref()).unwrap();
        assert_eq!(report.replay.txns_applied, 100);

        let pool = Arc::new(BufferPool::new(disk.clone(), 64));
        let tree = RTree::<2>::open(pool).unwrap();
        assert_eq!(tree.len(), 100, "every committed insert must survive");
        let report = tree.check();
        assert!(report.is_clean(), "{report}");
        assert!(
            report.unreachable.is_empty(),
            "the sweep must leave no leaks: {report}"
        );
        for i in (0..100).step_by(7) {
            let hits = tree.query_region(&square(i)).unwrap();
            assert!(hits.iter().any(|&(_, id)| id == i), "entry {i} lost");
        }
    }

    #[test]
    fn recover_twice_is_idempotent() {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::default_size());
        let log = MemLogStore::new();
        {
            let pool = Arc::new(BufferPool::new(disk.clone(), 64));
            let mut tree = RTree::<2>::create(pool, NodeCapacity::new(8).unwrap()).unwrap();
            let wal = Wal::create(log.clone(), 1, WalOptions::default()).unwrap();
            tree.attach_wal(wal).unwrap();
            for i in 0..50 {
                tree.insert(square(i), i).unwrap();
            }
        }
        recover(&disk, log.as_ref()).unwrap();
        let second = recover(&disk, log.as_ref()).unwrap();
        assert_eq!(second.replay.txns_applied, 0);
        assert_eq!(second.pages_reclaimed, 0);

        let pool = Arc::new(BufferPool::new(disk.clone(), 64));
        let tree = RTree::<2>::open(pool).unwrap();
        assert_eq!(tree.len(), 50);
        assert!(tree.check().is_clean());
    }
}
