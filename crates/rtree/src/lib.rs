//! A paged R-tree.
//!
//! This crate is the substrate every packing algorithm in the paper loads
//! into: an R-tree stored one-node-per-page (paper §2.1: "we will assume
//! that exactly one node fits per disk page") on top of the
//! [`storage`] buffer pool, so that every node visit is a buffer-pool
//! request and every miss is a countable *disk access*.
//!
//! Provided here:
//!
//! * the node page format and codec ([`node`], [`codec`]),
//! * intersection queries — point and region — exactly as described in
//!   §2.1 ([`RTree::query_point`], [`RTree::query_region`]),
//! * Guttman's dynamic algorithms: insertion with linear or quadratic
//!   split ([`insert`], [`split`]) and deletion with tree condensation
//!   ([`delete`]) — the paper's motivating baseline for why packing is
//!   needed at all,
//! * the bottom-up bulk-load framework of §2.2's "General Algorithm"
//!   ([`bulk`]): packing algorithms supply an ordering, this module turns
//!   ordered rectangles into a tree with ~100% space utilization,
//! * k-nearest-neighbour search ([`RTree::nearest`]) as an extension,
//! * structural validation ([`RTree::validate`]) and per-level statistics
//!   ([`stats`]) for the paper's area/perimeter metrics.

pub mod bulk;
pub mod bulk_insert;
pub mod capacity;
pub mod codec;
pub mod delete;
pub mod executor;
pub mod fsck;
pub mod index;
pub mod insert;
pub mod iter;
pub mod lower;
pub mod node;
pub mod recovery;
pub mod rplus;
pub mod rstar;
pub mod snapshot;
pub mod split;
pub mod stats;
pub mod store;
pub mod tree;

pub use bulk::{BulkLoader, LeafRangeWriter, ParallelLoad};
pub use capacity::NodeCapacity;
pub use codec::{NodeView, RectCodec};
pub use executor::{BatchQuery, BatchReport, QueryExecutor};
pub use fsck::{CheckReport, PageIssue};
pub use index::{IndexStats, SpatialIndex};
pub use iter::RegionIter;
pub use lower::LevelNodes;
pub use node::{Entry, Node};
pub use recovery::{recover, RecoveryReport};
pub use rplus::RPlusTree;
pub use snapshot::{SharedRTree, Snapshot};
pub use split::SplitPolicy;
pub use stats::{LevelSummary, TreeSummary};
pub use store::{
    kind_name, read_tree_meta, EntryCodec, NodeStore, TreeMeta, DEFAULT_TREE, KIND_HILBERT,
    KIND_RPLUS, KIND_RTREE,
};
pub use tree::RTree;

use storage::PageId;

/// Errors from R-tree operations.
#[derive(Debug)]
pub enum RTreeError {
    /// Storage layer failure.
    Storage(storage::StorageError),
    /// A page failed to decode as an R-tree node.
    Corrupt {
        /// The offending page.
        page: PageId,
        /// What went wrong.
        reason: String,
    },
    /// Node capacity does not fit in the configured page size.
    CapacityTooLarge {
        /// Entries requested per node.
        requested: usize,
        /// Most entries a page can hold at this dimension.
        max: usize,
    },
    /// A structural invariant does not hold (returned by `validate`).
    Invalid(String),
    /// Attempted to bulk-load zero rectangles.
    EmptyLoad,
    /// A mutation failed while committing its staged writes, so the
    /// on-disk tree may mix old and new pages. Further mutations are
    /// refused; read the data back with `check`/recovery tooling.
    Poisoned,
}

impl std::fmt::Display for RTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RTreeError::Storage(e) => write!(f, "storage: {e}"),
            RTreeError::Corrupt { page, reason } => {
                write!(f, "corrupt node at {page}: {reason}")
            }
            RTreeError::CapacityTooLarge { requested, max } => {
                write!(f, "capacity {requested} exceeds page maximum {max}")
            }
            RTreeError::Invalid(msg) => write!(f, "invariant violated: {msg}"),
            RTreeError::EmptyLoad => write!(f, "cannot bulk-load an empty collection"),
            RTreeError::Poisoned => {
                write!(f, "tree poisoned by a failed commit; mutations refused")
            }
        }
    }
}

impl std::error::Error for RTreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RTreeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<storage::StorageError> for RTreeError {
    fn from(e: storage::StorageError) -> Self {
        RTreeError::Storage(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RTreeError>;
