//! The unified node-store substrate shared by every paged tree variant.
//!
//! An R-tree, an R+-tree and a Hilbert R-tree differ in how they order,
//! split and clip entries — not in how a node becomes a page, how pages
//! are acquired and released, or how a tree's metadata survives a
//! reopen. This module owns that common substrate:
//!
//! * [`EntryCodec`] — the one thing a variant must supply: how a single
//!   entry serializes. The shared page layout (24-byte header with
//!   magic, level, count, tag, FNV-1a checksum) and its validation live
//!   here, in [`encode_node`] / [`decode_node`].
//! * [`TreeMeta`] — the per-tree metadata block (kind, dims, root,
//!   height, len, capacities), with a v2 (`"RTM2"`, checksummed) and a
//!   legacy v1 (`"RTM1"`, page 0) wire form.
//! * [`NodeStore`] — page acquire/release through the format-v2
//!   [`PageAllocator`] (persistent free list, named-tree catalog), node
//!   read/write through the sharded buffer pool, and meta persistence
//!   with crash-safe write ordering. A v1 compat backing keeps old
//!   single-tree images readable *and* writable in their own format.
//!
//! The zero-copy query path ([`crate::codec::NodeView`]) deliberately
//! stays out of this abstraction: it is the measured hot path and reads
//! its fixed rectangle layout directly.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use bytes::{Buf, BufMut};
use storage::{BufferPool, Disk, PageAllocator, PageId, StorageError, Wal, FORMAT_V2_MAGIC};

use crate::{RTreeError, Result};

/// Byte length of the node-page header shared by every entry codec:
/// magic, level, count, tag (4 × u32), checksum (u64).
pub const HEADER_LEN: usize = 24;

/// The tree name used when a caller doesn't pick one (single-tree files,
/// v1 compat).
pub const DEFAULT_TREE: &str = "default";

/// v1 single-tree meta magic (`"RTM1"`, page 0 of legacy images).
pub const META_MAGIC_V1: u32 = u32::from_le_bytes(*b"RTM1");
/// v2 per-tree meta magic (`"RTM2"`, on a catalog-assigned meta page).
pub const META_MAGIC_V2: u32 = u32::from_le_bytes(*b"RTM2");

/// [`TreeMeta::kind`] of a Guttman/STR [`crate::RTree`].
pub const KIND_RTREE: u32 = 0;
/// [`TreeMeta::kind`] of an [`crate::RPlusTree`].
pub const KIND_RPLUS: u32 = 1;
/// [`TreeMeta::kind`] of an `hrtree::HilbertRTree`.
pub const KIND_HILBERT: u32 = 2;

/// Human name for a tree kind tag (error messages, `rtree-cli trees`).
pub fn kind_name(kind: u32) -> &'static str {
    match kind {
        KIND_RTREE => "rtree",
        KIND_RPLUS => "rplus",
        KIND_HILBERT => "hilbert",
        _ => "unknown",
    }
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a, 64-bit, streaming.
pub(crate) fn fnv1a_update(mut h: u64, data: &[u8]) -> u64 {
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checksum over everything that matters in a node page: the header
/// prefix (magic, level, count, tag — bytes 0..16) and the entry region.
/// A flipped bit anywhere meaningful is detected. Entry-layout agnostic,
/// so the fsck audit can verify any variant's pages.
pub fn page_checksum(page: &[u8], body_end: usize) -> u64 {
    let h = fnv1a_update(FNV_SEED, &page[..16]);
    fnv1a_update(h, &page[HEADER_LEN..body_end])
}

/// How one entry of a tree variant serializes. Everything else about a
/// node page — header, checksum, validation — is shared.
pub trait EntryCodec: Send + Sync + 'static {
    /// The in-memory entry type.
    type Entry;
    /// Page magic for this variant's nodes (e.g. `"RTN1"`, `"HRT1"`).
    const MAGIC: u32;
    /// Serialized size of one entry, in bytes.
    const ENTRY_SIZE: usize;
    /// The header's fourth word: a codec-defined consistency tag checked
    /// on read (the rectangle codec stores its dimension here; codecs
    /// with nothing to check use 0).
    const TAG: u32;

    /// Serialize `e` into `out` (`out.len() == ENTRY_SIZE`).
    fn encode_entry(e: &Self::Entry, out: &mut [u8]);

    /// Deserialize one entry; the error string is embedded in the
    /// surrounding page's [`RTreeError::Corrupt`].
    fn decode_entry(inp: &[u8]) -> std::result::Result<Self::Entry, String>;

    /// Error text for a magic mismatch (overridable so existing
    /// per-variant messages stay stable).
    fn bad_magic_msg() -> String {
        "bad magic".to_string()
    }

    /// Error text for a tag mismatch.
    fn tag_mismatch_msg(got: u32) -> String {
        format!("tag mismatch: page has {got}, expected {}", Self::TAG)
    }
}

/// Largest entry count a page of `page_size` bytes can hold for `E`.
pub const fn max_entries<E: EntryCodec>(page_size: usize) -> usize {
    (page_size - HEADER_LEN) / E::ENTRY_SIZE
}

/// Serialize a node (level + entries) into `page`.
///
/// # Panics
/// Panics if the entries do not fit — callers size nodes against
/// [`max_entries`], so overflow here is a logic error, not an input
/// error.
pub fn encode_node<E: EntryCodec>(level: u32, entries: &[E::Entry], page: &mut [u8]) {
    let need = HEADER_LEN + entries.len() * E::ENTRY_SIZE;
    assert!(
        need <= page.len(),
        "node with {} entries needs {need} bytes, page has {}",
        entries.len(),
        page.len()
    );
    // Entries first (into the region after the header), then the header
    // with the checksum over that region.
    for (e, out) in entries
        .iter()
        .zip(page[HEADER_LEN..need].chunks_exact_mut(E::ENTRY_SIZE))
    {
        E::encode_entry(e, out);
    }
    {
        let mut header = &mut page[..16];
        header.put_u32_le(E::MAGIC);
        header.put_u32_le(level);
        header.put_u32_le(entries.len() as u32);
        header.put_u32_le(E::TAG);
    }
    let checksum = page_checksum(page, need);
    let mut cks = &mut page[16..HEADER_LEN];
    cks.put_u64_le(checksum);
    // Anything after `need` is stale bytes from a previous occupant of the
    // frame; the count field makes them unreachable.
}

/// Deserialize a node from `page` as `(level, entries)`.
///
/// `page_id` is only for error messages.
pub fn decode_node<E: EntryCodec>(page: &[u8], page_id: PageId) -> Result<(u32, Vec<E::Entry>)> {
    if page.len() < HEADER_LEN {
        return Err(corrupt(page_id, "page shorter than header"));
    }
    let mut header = &page[..HEADER_LEN];
    let magic = header.get_u32_le();
    if magic != E::MAGIC {
        return Err(corrupt(page_id, &E::bad_magic_msg()));
    }
    let level = header.get_u32_le();
    let count = header.get_u32_le() as usize;
    let tag = header.get_u32_le();
    if tag != E::TAG {
        return Err(corrupt(page_id, &E::tag_mismatch_msg(tag)));
    }
    let checksum = header.get_u64_le();

    let need = HEADER_LEN + count * E::ENTRY_SIZE;
    if need > page.len() {
        return Err(corrupt(page_id, "entry count exceeds page size"));
    }
    if page_checksum(page, need) != checksum {
        return Err(corrupt(page_id, "checksum mismatch (torn write?)"));
    }

    let mut entries = Vec::with_capacity(count);
    for chunk in page[HEADER_LEN..need].chunks_exact(E::ENTRY_SIZE) {
        entries.push(E::decode_entry(chunk).map_err(|e| corrupt(page_id, &e))?);
    }
    Ok((level, entries))
}

fn corrupt(page: PageId, reason: &str) -> RTreeError {
    RTreeError::Corrupt {
        page,
        reason: reason.to_string(),
    }
}

/// A tree's metadata block: everything needed to reopen it.
///
/// One struct serves all variants; fields a variant doesn't use carry
/// its conventions (a Hilbert tree stores `dims = 2`, `policy = 0`).
///
/// v2 wire form (`"RTM2"`, little-endian, on the catalog meta page):
///
/// ```text
/// offset  size  field
/// 0       4     magic  "RTM2"
/// 4       4     kind   (0 = rtree, 1 = rplus, 2 = hilbert)
/// 8       4     dims
/// 12      4     height
/// 16      8     root   (PageId)
/// 24      8     len
/// 32      4     cap_max
/// 36      4     cap_min
/// 40      4     policy
/// 44      4     reserved (0)
/// 48      8     checksum (FNV-1a of bytes 0..48)
/// ```
///
/// The v1 form (`"RTM1"` on page 0: magic, dims, root, height, cap_max,
/// cap_min, policy, len — no kind, no checksum) is still read and
/// written by the compat backing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeMeta {
    /// Variant tag ([`KIND_RTREE`], [`KIND_RPLUS`], [`KIND_HILBERT`]).
    pub kind: u32,
    /// Spatial dimension of the entries.
    pub dims: u32,
    /// Root page.
    pub root: PageId,
    /// Number of levels (1 = root is a leaf).
    pub height: u32,
    /// Number of data objects.
    pub len: u64,
    /// Node capacity maximum.
    pub cap_max: u32,
    /// Node capacity minimum.
    pub cap_min: u32,
    /// Split-policy tag (rtree only; 0 elsewhere).
    pub policy: u32,
}

const META_V2_LEN: usize = 56;

impl TreeMeta {
    fn encode_v2(&self, page: &mut [u8]) {
        page.fill(0);
        {
            let mut w = &mut page[..48];
            w.put_u32_le(META_MAGIC_V2);
            w.put_u32_le(self.kind);
            w.put_u32_le(self.dims);
            w.put_u32_le(self.height);
            w.put_u64_le(self.root.index());
            w.put_u64_le(self.len);
            w.put_u32_le(self.cap_max);
            w.put_u32_le(self.cap_min);
            w.put_u32_le(self.policy);
            w.put_u32_le(0);
        }
        let checksum = fnv1a_update(FNV_SEED, &page[..48]);
        let mut w = &mut page[48..META_V2_LEN];
        w.put_u64_le(checksum);
    }

    fn decode_v2(page: &[u8], page_id: PageId) -> Result<Self> {
        if page.len() < META_V2_LEN {
            return Err(corrupt(page_id, "page shorter than tree meta"));
        }
        let mut r = &page[..META_V2_LEN];
        let magic = r.get_u32_le();
        if magic != META_MAGIC_V2 {
            return Err(corrupt(page_id, "bad tree meta magic"));
        }
        let kind = r.get_u32_le();
        let dims = r.get_u32_le();
        let height = r.get_u32_le();
        let root = PageId(r.get_u64_le());
        let len = r.get_u64_le();
        let cap_max = r.get_u32_le();
        let cap_min = r.get_u32_le();
        let policy = r.get_u32_le();
        let _reserved = r.get_u32_le();
        let stored = r.get_u64_le();
        if fnv1a_update(FNV_SEED, &page[..48]) != stored {
            return Err(corrupt(
                page_id,
                "tree meta checksum mismatch (torn write?)",
            ));
        }
        Ok(Self {
            kind,
            dims,
            root,
            height,
            len,
            cap_max,
            cap_min,
            policy,
        })
    }

    fn encode_v1(&self, page: &mut [u8]) {
        page.fill(0);
        let mut w = &mut page[..];
        w.put_u32_le(META_MAGIC_V1);
        w.put_u32_le(self.dims);
        w.put_u64_le(self.root.index());
        w.put_u32_le(self.height);
        w.put_u32_le(self.cap_max);
        w.put_u32_le(self.cap_min);
        w.put_u32_le(self.policy);
        w.put_u64_le(self.len);
    }

    fn decode_v1(page: &[u8], page_id: PageId) -> Result<Self> {
        let mut r = page;
        if r.get_u32_le() != META_MAGIC_V1 {
            return Err(corrupt(page_id, "bad meta magic"));
        }
        let dims = r.get_u32_le();
        let root = PageId(r.get_u64_le());
        let height = r.get_u32_le();
        let cap_max = r.get_u32_le();
        let cap_min = r.get_u32_le();
        let policy = r.get_u32_le();
        let len = r.get_u64_le();
        Ok(Self {
            kind: KIND_RTREE,
            dims,
            root,
            height,
            len,
            cap_max,
            cap_min,
            policy,
        })
    }
}

/// Where a [`NodeStore`]'s pages and metadata live.
enum Backing {
    /// Format v2: superblock allocator + catalog meta page.
    V2 {
        alloc: Arc<PageAllocator>,
        meta_page: PageId,
    },
    /// Legacy single-tree image: meta on page 0, bump allocation, free
    /// list in memory only (exactly the v1 behavior, preserved so v1
    /// images stay valid v1 images across mutate + persist).
    V1,
}

/// Page acquire/release, node I/O and meta persistence for one named
/// tree — the substrate [`crate::RTree`], [`crate::RPlusTree`] and
/// `hrtree::HilbertRTree` are built on. `E` fixes the node page format.
pub struct NodeStore<E: EntryCodec> {
    pool: Arc<BufferPool>,
    backing: Backing,
    /// Pages freed this session, reused before touching the allocator.
    /// Handed to the persistent free list at [`persist`](Self::persist)
    /// (v2) — not immediately, so a crash can never leave a page both on
    /// the durable free chain and referenced by the last-committed meta.
    free: Vec<PageId>,
    /// Like `free`, but never reused before the next persist. The WAL
    /// mode parks committed-then-replaced pages here: the durable meta
    /// (or a WAL replay) may still reference them, and dirty-frame
    /// eviction writes through to disk mid-session, so reusing one
    /// before a checkpoint could corrupt the recoverable state.
    deferred: Vec<PageId>,
    /// Route `free_page`/`extend_free` into `deferred` (WAL mode).
    defer_reuse: bool,
    /// Write-ahead log this store's commits must precede, if attached.
    wal: Option<Arc<Wal>>,
    _codec: PhantomData<fn() -> E>,
}

/// Trees sharing one open disk must share one [`PageAllocator`]: the
/// allocator caches the free-list head and the catalog in memory, so two
/// independent instances over the same file would clobber each other's
/// superblock commits (each persist would orphan the chain the other
/// just threaded). This process-wide registry hands every `NodeStore`
/// over the same disk the same instance; entries die with their last
/// store, so a genuine reopen (all trees dropped) re-reads the disk.
fn allocator_registry() -> &'static Mutex<HashMap<usize, Weak<PageAllocator>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, Weak<PageAllocator>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn shared_allocator(
    disk: Arc<dyn Disk>,
    make: impl FnOnce(Arc<dyn Disk>) -> storage::Result<Arc<PageAllocator>>,
) -> Result<Arc<PageAllocator>> {
    // The allocator keeps its disk alive, so a live entry's address
    // cannot be recycled by a new disk; dead entries are purged first.
    let key = Arc::as_ptr(&disk) as *const u8 as usize;
    let mut registry = allocator_registry().lock().unwrap();
    registry.retain(|_, alloc| alloc.strong_count() > 0);
    if let Some(alloc) = registry.get(&key).and_then(Weak::upgrade) {
        return Ok(alloc);
    }
    let alloc = make(disk)?;
    registry.insert(key, Arc::downgrade(&alloc));
    Ok(alloc)
}

impl<E: EntryCodec> NodeStore<E> {
    /// Create the named tree on `pool`'s disk: formats an empty disk as
    /// v2, joins an existing v2 file's catalog, and refuses a v1 image
    /// (those are single-tree by construction).
    pub fn create(pool: Arc<BufferPool>, name: &str) -> Result<Self> {
        let disk = pool.disk().clone();
        let alloc = match PageAllocator::probe_magic(disk.as_ref())? {
            None => shared_allocator(disk, PageAllocator::format)?,
            Some(FORMAT_V2_MAGIC) => shared_allocator(disk, PageAllocator::open)?,
            Some(m) if m == META_MAGIC_V1 => {
                return Err(corrupt(
                    PageId(0),
                    "v1 single-tree image: open it instead (new trees need a v2 file)",
                ))
            }
            Some(_) => return Err(corrupt(PageId(0), "disk is neither empty, v1 nor v2")),
        };
        let meta_page = alloc.create_tree(name)?;
        Ok(Self {
            pool,
            backing: Backing::V2 { alloc, meta_page },
            free: Vec::new(),
            deferred: Vec::new(),
            defer_reuse: false,
            wal: None,
            _codec: PhantomData,
        })
    }

    /// Open the named tree, returning the store and its decoded
    /// metadata. A v1 image opens (read- and write-compatible) under the
    /// name [`DEFAULT_TREE`] only; the caller validates `meta.kind` and
    /// `meta.dims` against what it expects.
    pub fn open(pool: Arc<BufferPool>, name: &str) -> Result<(Self, TreeMeta)> {
        let disk = pool.disk().clone();
        match PageAllocator::probe_magic(disk.as_ref())? {
            None => Err(corrupt(PageId(0), "empty disk: nothing to open")),
            Some(m) if m == META_MAGIC_V1 => {
                if name != DEFAULT_TREE {
                    return Err(RTreeError::Storage(StorageError::UnknownTree(
                        name.to_string(),
                    )));
                }
                let mut page = vec![0u8; disk.page_size()];
                disk.read_page(PageId(0), &mut page)?;
                let meta = TreeMeta::decode_v1(&page, PageId(0))?;
                Ok((
                    Self {
                        pool,
                        backing: Backing::V1,
                        free: Vec::new(),
                        deferred: Vec::new(),
                        defer_reuse: false,
                        wal: None,
                        _codec: PhantomData,
                    },
                    meta,
                ))
            }
            Some(FORMAT_V2_MAGIC) => {
                let alloc = shared_allocator(disk.clone(), PageAllocator::open)?;
                let meta_page = alloc.lookup_tree(name).ok_or_else(|| {
                    RTreeError::Storage(StorageError::UnknownTree(name.to_string()))
                })?;
                let mut page = vec![0u8; disk.page_size()];
                disk.read_page(meta_page, &mut page)?;
                let meta = TreeMeta::decode_v2(&page, meta_page)?;
                Ok((
                    Self {
                        pool,
                        backing: Backing::V2 { alloc, meta_page },
                        free: Vec::new(),
                        deferred: Vec::new(),
                        defer_reuse: false,
                        wal: None,
                        _codec: PhantomData,
                    },
                    meta,
                ))
            }
            Some(_) => Err(corrupt(PageId(0), "unrecognized on-disk format")),
        }
    }

    /// The buffer pool node I/O goes through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The format-v2 allocator, when this store isn't a v1 compat image.
    pub fn allocator(&self) -> Option<&Arc<PageAllocator>> {
        match &self.backing {
            Backing::V2 { alloc, .. } => Some(alloc),
            Backing::V1 => None,
        }
    }

    /// The page this tree's metadata lives on (page 0 for v1 images).
    pub fn meta_page(&self) -> PageId {
        match &self.backing {
            Backing::V2 { meta_page, .. } => *meta_page,
            Backing::V1 => PageId(0),
        }
    }

    /// Put a write-ahead log in front of this store's page writes.
    /// Switches frees to deferred reuse (see the `deferred` field) and
    /// requires a v2 backing — the WAL watermark lives in the v2
    /// superblock.
    pub fn attach_wal(&mut self, wal: Arc<Wal>) -> Result<()> {
        if matches!(self.backing, Backing::V1) {
            return Err(corrupt(
                PageId(0),
                "the WAL needs a v2 file (no superblock watermark in v1)",
            ));
        }
        self.defer_reuse = true;
        self.wal = Some(wal);
        Ok(())
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// A read-only twin over the same pool, allocator and meta page —
    /// snapshot readers traverse through one of these without borrowing
    /// the writer's store. It shares no session free list and must
    /// never be used to mutate.
    pub fn reader_clone(&self) -> Self {
        Self {
            pool: self.pool.clone(),
            backing: match &self.backing {
                Backing::V2 { alloc, meta_page } => Backing::V2 {
                    alloc: alloc.clone(),
                    meta_page: *meta_page,
                },
                Backing::V1 => Backing::V1,
            },
            free: Vec::new(),
            deferred: Vec::new(),
            defer_reuse: false,
            wal: None,
            _codec: PhantomData,
        }
    }

    // ---- pages --------------------------------------------------------

    /// Get a page for a new node: this session's free list first, then
    /// the persistent free chain (v2), then fresh disk growth.
    pub fn alloc_page(&mut self) -> Result<PageId> {
        if let Some(p) = self.free.pop() {
            return Ok(p);
        }
        match &self.backing {
            Backing::V2 { alloc, .. } => Ok(alloc.allocate()?),
            Backing::V1 => Ok(self.pool.disk().allocate()?),
        }
    }

    /// Release a page to this session's free list. It reaches the
    /// persistent free chain at the next [`persist`](Self::persist);
    /// in WAL mode it is also not *reused* before then.
    pub fn free_page(&mut self, page: PageId) {
        if self.defer_reuse {
            self.deferred.push(page);
        } else {
            self.free.push(page);
        }
    }

    /// Release several pages at once (staging commit/abandon paths).
    pub fn extend_free(&mut self, pages: impl IntoIterator<Item = PageId>) {
        if self.defer_reuse {
            self.deferred.extend(pages);
        } else {
            self.free.extend(pages);
        }
    }

    /// Release pages that were never durably referenced (an abandoned
    /// staging's fresh allocations): immediately reusable even in WAL
    /// mode, since neither the durable meta nor any WAL record names
    /// them as live.
    pub fn extend_reusable(&mut self, pages: impl IntoIterator<Item = PageId>) {
        self.free.extend(pages);
    }

    /// Pages freed this session, still eligible for in-session reuse,
    /// and not yet persisted to the free chain.
    pub fn session_free(&self) -> &[PageId] {
        &self.free
    }

    /// Pages freed this session whose reuse is deferred to the next
    /// checkpoint (WAL mode).
    pub fn session_deferred(&self) -> &[PageId] {
        &self.deferred
    }

    // ---- nodes --------------------------------------------------------

    /// Read and decode the node on `page` through the buffer pool.
    pub fn read_node(&self, page: PageId) -> Result<(u32, Vec<E::Entry>)> {
        self.pool
            .with_page(page, |bytes| decode_node::<E>(bytes, page))?
    }

    /// Encode and write a node to `page` through the buffer pool,
    /// serializing straight into the frame (no staging buffer).
    pub fn write_node(&self, page: PageId, level: u32, entries: &[E::Entry]) -> Result<()> {
        self.pool
            .overwrite_page(page, |buf| encode_node::<E>(level, entries, buf))?;
        Ok(())
    }

    // ---- meta persistence ---------------------------------------------

    /// Make the tree durable: flush dirty node pages, write the meta
    /// block, hand this session's freed pages to the persistent free
    /// chain (v2), and sync.
    ///
    /// The ordering is the crash-safety argument:
    ///
    /// 1. `pool.flush()` — every node the new meta references is on the
    ///    media before the meta that references it.
    /// 2. meta write (direct to disk, bypassing the pool) — the commit
    ///    point for the tree itself.
    /// 3. free-chain writes — only pages the *new* meta cannot reach are
    ///    chained, so a crash between 2 and 3 leaks them at worst. The
    ///    reverse order would let a crash strand a page both on the
    ///    chain and reachable from the still-current old meta — a future
    ///    double allocation.
    /// 4. `sync`.
    pub fn persist(&mut self, meta: &TreeMeta) -> Result<()> {
        let disk = self.pool.disk().clone();
        let mut page = vec![0u8; disk.page_size()];
        // With a WAL attached, this is also the checkpoint: capture the
        // watermark *before* the flush — a transaction counted here has
        // finished its pool writes, so the flush puts it fully on media.
        // (Transactions that race in during the flush keep an LSN above
        // the captured watermark and stay replayable.)
        let checkpoint = self.wal.as_ref().map(|w| w.checkpoint_lsn());
        self.pool.flush()?;
        match &self.backing {
            Backing::V1 => {
                // Preserved v1 behavior: meta on page 0, session frees
                // stay in memory (a v1 image has no on-disk free list —
                // fsck reports the stranded pages as leaked).
                meta.encode_v1(&mut page);
                disk.write_page(PageId(0), &page)?;
            }
            Backing::V2 { alloc, meta_page } => {
                meta.encode_v2(&mut page);
                disk.write_page(*meta_page, &page)?;
                if !self.free.is_empty() || !self.deferred.is_empty() {
                    let mut freed = std::mem::take(&mut self.free);
                    freed.append(&mut self.deferred);
                    alloc.free_pages(&freed)?;
                }
            }
        }
        disk.sync()?;
        if let (Some(wal), Some(cp), Backing::V2 { alloc, .. }) =
            (&self.wal, checkpoint, &self.backing)
        {
            // Everything at or below `cp` is now on media: advance the
            // superblock watermark so recovery skips it, then drop
            // segments whose whole history is below it. A crash between
            // these steps only costs redundant (idempotent) replay.
            alloc.set_wal_applied_lsn(cp)?;
            disk.sync()?;
            wal.recycle(cp)?;
        }
        Ok(())
    }

    /// Encode the meta block as a full page image without writing it
    /// anywhere. WAL-mode commits log this image inside the transaction
    /// and only write it through the buffer pool once the transaction is
    /// durable — the next checkpoint's flush then carries it to the
    /// media together with the nodes it references.
    pub fn encode_meta(&self, meta: &TreeMeta) -> Result<Vec<u8>> {
        match &self.backing {
            Backing::V1 => Err(corrupt(PageId(0), "WAL meta images need a v2 file")),
            Backing::V2 { .. } => {
                let mut page = vec![0u8; self.pool.disk().page_size()];
                meta.encode_v2(&mut page);
                Ok(page)
            }
        }
    }

    /// Re-read this tree's metadata from disk (fsck compares the live
    /// tree against the committed state).
    pub fn read_meta(&self) -> Result<TreeMeta> {
        let disk = self.pool.disk();
        let mut page = vec![0u8; disk.page_size()];
        match &self.backing {
            Backing::V1 => {
                disk.read_page(PageId(0), &mut page)?;
                TreeMeta::decode_v1(&page, PageId(0))
            }
            Backing::V2 { meta_page, .. } => {
                disk.read_page(*meta_page, &mut page)?;
                TreeMeta::decode_v2(&page, *meta_page)
            }
        }
    }
}

/// Read the named tree's meta block without constructing a store (the
/// fsck audit walks *other* trees in the file this way, and `rtree-cli
/// trees` lists them).
pub fn read_tree_meta(disk: &dyn Disk, alloc: &PageAllocator, name: &str) -> Result<TreeMeta> {
    let meta_page = alloc
        .lookup_tree(name)
        .ok_or_else(|| RTreeError::Storage(StorageError::UnknownTree(name.to_string())))?;
    let mut page = vec![0u8; disk.page_size()];
    disk.read_page(meta_page, &mut page)?;
    TreeMeta::decode_v2(&page, meta_page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::RectCodec;
    use crate::Entry;
    use geom::Rect;
    use storage::MemDisk;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 16))
    }

    fn meta(root: PageId) -> TreeMeta {
        TreeMeta {
            kind: KIND_RTREE,
            dims: 2,
            root,
            height: 1,
            len: 0,
            cap_max: 10,
            cap_min: 4,
            policy: 0,
        }
    }

    #[test]
    fn meta_v2_roundtrip_and_corruption() {
        let m = TreeMeta {
            kind: KIND_HILBERT,
            dims: 2,
            root: PageId(17),
            height: 3,
            len: 12345,
            cap_max: 50,
            cap_min: 16,
            policy: 0,
        };
        let mut page = vec![0u8; 4096];
        m.encode_v2(&mut page);
        assert_eq!(TreeMeta::decode_v2(&page, PageId(1)).unwrap(), m);
        page[8] ^= 0x40;
        let err = TreeMeta::decode_v2(&page, PageId(1)).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn meta_v1_roundtrip() {
        let m = meta(PageId(1));
        let mut page = vec![0u8; 4096];
        m.encode_v1(&mut page);
        assert_eq!(TreeMeta::decode_v1(&page, PageId(0)).unwrap(), m);
    }

    #[test]
    fn create_formats_and_catalogs() {
        let pool = pool();
        let mut store = NodeStore::<RectCodec<2>>::create(pool.clone(), "alpha").unwrap();
        let root = store.alloc_page().unwrap();
        store.write_node(root, 0, &[]).unwrap();
        store.persist(&meta(root)).unwrap();

        // Same file, second tree, coexisting with the first.
        let mut store2 = NodeStore::<RectCodec<2>>::create(pool.clone(), "beta").unwrap();
        let root2 = store2.alloc_page().unwrap();
        assert_ne!(root, root2);
        store2.write_node(root2, 0, &[]).unwrap();
        store2.persist(&meta(root2)).unwrap();

        let (reopened, m) = NodeStore::<RectCodec<2>>::open(pool.clone(), "alpha").unwrap();
        assert_eq!(m.root, root);
        assert_eq!(reopened.meta_page(), PageId(1));
        assert!(NodeStore::<RectCodec<2>>::create(pool.clone(), "alpha").is_err());
        assert!(matches!(
            NodeStore::<RectCodec<2>>::open(pool, "gamma"),
            Err(RTreeError::Storage(StorageError::UnknownTree(_)))
        ));
    }

    #[test]
    fn session_frees_reach_the_persistent_chain_only_at_persist() {
        let pool = pool();
        let mut store = NodeStore::<RectCodec<2>>::create(pool.clone(), DEFAULT_TREE).unwrap();
        let root = store.alloc_page().unwrap();
        store.write_node(root, 0, &[]).unwrap();
        let extra = store.alloc_page().unwrap();
        store.free_page(extra);
        let alloc = store.allocator().unwrap().clone();
        assert_eq!(alloc.free_count(), 0, "free is session-local until persist");
        store.persist(&meta(root)).unwrap();
        assert_eq!(alloc.free_count(), 1);
        assert!(store.session_free().is_empty());
        // The reopened store reuses the freed page — the v1 wart, closed.
        let (mut again, _) = NodeStore::<RectCodec<2>>::open(pool, DEFAULT_TREE).unwrap();
        assert_eq!(again.alloc_page().unwrap(), extra);
    }

    #[test]
    fn node_roundtrip_through_pool() {
        let pool = pool();
        let mut store = NodeStore::<RectCodec<2>>::create(pool, DEFAULT_TREE).unwrap();
        let page = store.alloc_page().unwrap();
        let entries = vec![
            Entry::<2>::data(Rect::new([0.0, 0.0], [1.0, 1.0]), 7),
            Entry::<2>::data(Rect::new([2.0, 2.0], [3.0, 3.0]), 8),
        ];
        store.write_node(page, 0, &entries).unwrap();
        let (level, back) = store.read_node(page).unwrap();
        assert_eq!(level, 0);
        assert_eq!(back, entries);
    }
}
