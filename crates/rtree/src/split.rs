//! Node split algorithms for dynamic insertion.
//!
//! Guttman's paper gives exhaustive, quadratic and linear splits; the STR
//! paper's motivation (§1) is that trees built this way are poorly
//! structured compared to packed ones. We implement the linear and
//! quadratic splits (the exhaustive one is intractable at fan-out 100) plus
//! the R*-tree's axis split [Beckmann et al. 1990], which the paper cites
//! as one of the improved dynamic algorithms.

use geom::Rect;

use crate::{Entry, NodeCapacity};

/// Which algorithm redistributes entries when a node overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Guttman's linear-cost split.
    Linear,
    /// Guttman's quadratic-cost split (his recommended default).
    #[default]
    Quadratic,
    /// R*-tree topological split: choose the axis minimizing total margin,
    /// then the distribution minimizing overlap.
    RStarAxis,
}

impl SplitPolicy {
    /// Stable on-disk tag.
    pub fn tag(&self) -> u32 {
        match self {
            SplitPolicy::Linear => 0,
            SplitPolicy::Quadratic => 1,
            SplitPolicy::RStarAxis => 2,
        }
    }

    /// Inverse of [`tag`](Self::tag); unknown tags fall back to the
    /// default policy (the tag only affects future inserts, not stored
    /// data).
    pub fn from_tag(tag: u32) -> Self {
        match tag {
            0 => SplitPolicy::Linear,
            2 => SplitPolicy::RStarAxis,
            _ => SplitPolicy::Quadratic,
        }
    }

    /// Split an overflowing entry set (`cap.max() + 1` entries) into two
    /// groups, each with at least `cap.min()` entries.
    pub fn split<const D: usize>(
        &self,
        entries: Vec<Entry<D>>,
        cap: NodeCapacity,
    ) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
        debug_assert!(entries.len() >= 2, "cannot split fewer than 2 entries");
        debug_assert!(
            entries.len() <= cap.max() + 1,
            "split input larger than one overflow"
        );
        match self {
            SplitPolicy::Linear => linear_split(entries, cap),
            SplitPolicy::Quadratic => quadratic_split(entries, cap),
            SplitPolicy::RStarAxis => rstar_axis_split(entries, cap),
        }
    }
}

/// Guttman's LinearPickSeeds: on each axis find the entry with the highest
/// low side and the one with the lowest high side; normalize their
/// separation by the axis width; the axis with the greatest normalized
/// separation yields the two seeds.
fn linear_pick_seeds<const D: usize>(entries: &[Entry<D>]) -> (usize, usize) {
    let mut best_axis_sep = f64::NEG_INFINITY;
    let mut seeds = (0, 1);
    for axis in 0..D {
        let mut highest_lo = 0usize;
        let mut lowest_hi = 0usize;
        let mut min_lo = f64::INFINITY;
        let mut max_hi = f64::NEG_INFINITY;
        for (i, e) in entries.iter().enumerate() {
            if e.rect.lo(axis) > entries[highest_lo].rect.lo(axis) {
                highest_lo = i;
            }
            if e.rect.hi(axis) < entries[lowest_hi].rect.hi(axis) {
                lowest_hi = i;
            }
            min_lo = min_lo.min(e.rect.lo(axis));
            max_hi = max_hi.max(e.rect.hi(axis));
        }
        let width = (max_hi - min_lo).max(f64::MIN_POSITIVE);
        let sep = (entries[highest_lo].rect.lo(axis) - entries[lowest_hi].rect.hi(axis)) / width;
        if sep > best_axis_sep && highest_lo != lowest_hi {
            best_axis_sep = sep;
            seeds = (lowest_hi, highest_lo);
        }
    }
    if seeds.0 == seeds.1 {
        // Degenerate data (e.g. all rectangles identical): any pair works.
        seeds = (0, 1);
    }
    seeds
}

/// Guttman's QuadraticPickSeeds: the pair wasting the most area if grouped
/// together.
fn quadratic_pick_seeds<const D: usize>(entries: &[Entry<D>]) -> (usize, usize) {
    let mut worst = f64::NEG_INFINITY;
    let mut seeds = (0, 1);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let d = entries[i].rect.union(&entries[j].rect).area()
                - entries[i].rect.area()
                - entries[j].rect.area();
            if d > worst {
                worst = d;
                seeds = (i, j);
            }
        }
    }
    seeds
}

struct Group<const D: usize> {
    entries: Vec<Entry<D>>,
    mbr: Rect<D>,
}

impl<const D: usize> Group<D> {
    fn new(seed: Entry<D>) -> Self {
        Self {
            mbr: seed.rect,
            entries: vec![seed],
        }
    }

    fn add(&mut self, e: Entry<D>) {
        self.mbr.union_in_place(&e.rect);
        self.entries.push(e);
    }
}

/// Distribute `rest` over two seeded groups. `pick` chooses the next entry
/// index and preferred group given the remaining slice and both groups;
/// the min-fill rule preempts it when one group must take everything left.
fn distribute<const D: usize>(
    mut rest: Vec<Entry<D>>,
    mut g1: Group<D>,
    mut g2: Group<D>,
    cap: NodeCapacity,
    mut pick: impl FnMut(&[Entry<D>], &Group<D>, &Group<D>) -> (usize, bool),
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    while !rest.is_empty() {
        // If one group needs every remaining entry to reach min fill,
        // assign the remainder wholesale (Guttman's stopping rule).
        if g1.entries.len() + rest.len() == cap.min() {
            for e in rest.drain(..) {
                g1.add(e);
            }
            break;
        }
        if g2.entries.len() + rest.len() == cap.min() {
            for e in rest.drain(..) {
                g2.add(e);
            }
            break;
        }
        let (idx, to_first) = pick(&rest, &g1, &g2);
        let e = rest.swap_remove(idx);
        if to_first {
            g1.add(e);
        } else {
            g2.add(e);
        }
    }
    (g1.entries, g2.entries)
}

/// Tie-broken group choice for one entry: least enlargement, then smaller
/// area, then fewer entries.
fn choose_group<const D: usize>(e: &Entry<D>, g1: &Group<D>, g2: &Group<D>) -> bool {
    let e1 = g1.mbr.enlargement(&e.rect);
    let e2 = g2.mbr.enlargement(&e.rect);
    if e1 != e2 {
        return e1 < e2;
    }
    let a1 = g1.mbr.area();
    let a2 = g2.mbr.area();
    if a1 != a2 {
        return a1 < a2;
    }
    g1.entries.len() <= g2.entries.len()
}

fn linear_split<const D: usize>(
    mut entries: Vec<Entry<D>>,
    cap: NodeCapacity,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let (s1, s2) = linear_pick_seeds(&entries);
    // Remove the higher index first so the lower index stays valid.
    let (hi, lo) = if s1 > s2 { (s1, s2) } else { (s2, s1) };
    let seed_hi = entries.swap_remove(hi);
    let seed_lo = entries.swap_remove(lo);
    let g1 = Group::new(seed_lo);
    let g2 = Group::new(seed_hi);
    // Linear split assigns remaining entries in arbitrary order, each to
    // the group whose MBR grows least.
    distribute(entries, g1, g2, cap, |rest, g1, g2| {
        (rest.len() - 1, choose_group(&rest[rest.len() - 1], g1, g2))
    })
}

fn quadratic_split<const D: usize>(
    mut entries: Vec<Entry<D>>,
    cap: NodeCapacity,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let (s1, s2) = quadratic_pick_seeds(&entries);
    let (hi, lo) = if s1 > s2 { (s1, s2) } else { (s2, s1) };
    let seed_hi = entries.swap_remove(hi);
    let seed_lo = entries.swap_remove(lo);
    let g1 = Group::new(seed_lo);
    let g2 = Group::new(seed_hi);
    // PickNext: the entry with the greatest preference for one group.
    distribute(entries, g1, g2, cap, |rest, g1, g2| {
        let mut best_idx = 0;
        let mut best_diff = f64::NEG_INFINITY;
        for (i, e) in rest.iter().enumerate() {
            let d1 = g1.mbr.enlargement(&e.rect);
            let d2 = g2.mbr.enlargement(&e.rect);
            let diff = (d1 - d2).abs();
            if diff > best_diff {
                best_diff = diff;
                best_idx = i;
            }
        }
        (best_idx, choose_group(&rest[best_idx], g1, g2))
    })
}

/// R*-tree split: for each axis sort by (lo, hi); across all legal split
/// positions compute the margin sum; pick the axis with the least total
/// margin, then the position with least overlap (ties: least total area).
fn rstar_axis_split<const D: usize>(
    entries: Vec<Entry<D>>,
    cap: NodeCapacity,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let m = cap.min().max(1);
    let total = entries.len();
    debug_assert!(total >= 2 * m, "R* split needs at least 2*min entries");

    let mut best: Option<(f64, f64, usize, Vec<Entry<D>>)> = None; // (overlap, area, split_at, sorted)
    let mut best_axis_margin = f64::INFINITY;

    for axis in 0..D {
        let mut sorted = entries.clone();
        sorted.sort_by(|a, b| {
            geom::total_cmp_f64(a.rect.lo(axis), b.rect.lo(axis))
                .then(geom::total_cmp_f64(a.rect.hi(axis), b.rect.hi(axis)))
        });

        // Prefix/suffix MBRs for O(n) distribution evaluation.
        let mut prefix = vec![Rect::<D>::empty(); total + 1];
        for i in 0..total {
            prefix[i + 1] = prefix[i].union(&sorted[i].rect);
        }
        let mut suffix = vec![Rect::<D>::empty(); total + 1];
        for i in (0..total).rev() {
            suffix[i] = suffix[i + 1].union(&sorted[i].rect);
        }

        let mut margin_sum = 0.0;
        let mut axis_best: Option<(f64, f64, usize)> = None;
        for k in m..=(total - m) {
            let left = prefix[k];
            let right = suffix[k];
            margin_sum += left.margin() + right.margin();
            let overlap = left.intersection(&right).map_or(0.0, |r| r.area());
            let area = left.area() + right.area();
            let better = match axis_best {
                None => true,
                Some((o, a, _)) => overlap < o || (overlap == o && area < a),
            };
            if better {
                axis_best = Some((overlap, area, k));
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            let (o, a, k) = axis_best.expect("at least one distribution");
            best = Some((o, a, k, sorted));
        }
    }

    let (_, _, k, sorted) = best.expect("at least one axis");
    let mut left = sorted;
    let right = left.split_off(k);
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries_grid(n: usize) -> Vec<Entry<2>> {
        // n^2 unit squares on an n x n grid.
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                out.push(Entry::data(
                    Rect::new(
                        [i as f64 * 2.0, j as f64 * 2.0],
                        [i as f64 * 2.0 + 1.0, j as f64 * 2.0 + 1.0],
                    ),
                    (i * n + j) as u64,
                ));
            }
        }
        out
    }

    fn two_clusters() -> Vec<Entry<2>> {
        let mut v = Vec::new();
        for i in 0..5 {
            let f = i as f64 * 0.1;
            v.push(Entry::data(Rect::new([f, f], [f + 0.05, f + 0.05]), i));
            v.push(Entry::data(
                Rect::new([100.0 + f, 100.0 + f], [100.0 + f + 0.05, 100.0 + f + 0.05]),
                100 + i,
            ));
        }
        v
    }

    fn check_split(policy: SplitPolicy, entries: Vec<Entry<2>>, cap: NodeCapacity) {
        let n = entries.len();
        let ids: std::collections::HashSet<u64> = entries.iter().map(|e| e.payload).collect();
        let (a, b) = policy.split(entries, cap);
        assert_eq!(a.len() + b.len(), n, "no entries lost");
        assert!(a.len() >= cap.min(), "{policy:?}: left below min fill");
        assert!(b.len() >= cap.min(), "{policy:?}: right below min fill");
        assert!(a.len() <= cap.max() && b.len() <= cap.max());
        let out_ids: std::collections::HashSet<u64> =
            a.iter().chain(b.iter()).map(|e| e.payload).collect();
        assert_eq!(ids, out_ids, "{policy:?}: payloads preserved");
    }

    #[test]
    fn all_policies_preserve_entries() {
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStarAxis,
        ] {
            let cap = NodeCapacity::new(9).unwrap();
            check_split(policy, entries_grid(3), cap); // 9 entries? grid(3)=9; overflow shape 9<=10 fine
            let cap = NodeCapacity::new(15).unwrap();
            check_split(policy, entries_grid(4), cap); // 16 = 15+1 overflow
        }
    }

    #[test]
    fn clusters_are_separated() {
        // Two far-apart clusters must end up in different groups under
        // every policy: any mixed assignment has a catastrophically larger
        // MBR.
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStarAxis,
        ] {
            let cap = NodeCapacity::new(9).unwrap();
            let (a, b) = policy.split(two_clusters(), cap);
            let a_low = a.iter().all(|e| e.payload < 100);
            let a_high = a.iter().all(|e| e.payload >= 100);
            assert!(
                a_low || a_high,
                "{policy:?} mixed the clusters: {:?} / {:?}",
                a.iter().map(|e| e.payload).collect::<Vec<_>>(),
                b.iter().map(|e| e.payload).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn identical_rectangles_split_legally() {
        // Degenerate input: every rectangle the same. Split must still
        // produce two legal groups.
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStarAxis,
        ] {
            let entries: Vec<Entry<2>> = (0..6)
                .map(|i| Entry::data(Rect::new([0.0, 0.0], [1.0, 1.0]), i))
                .collect();
            let cap = NodeCapacity::new(5).unwrap();
            let (a, b) = policy.split(entries, cap);
            assert_eq!(a.len() + b.len(), 6);
            assert!(a.len() >= cap.min() && b.len() >= cap.min());
        }
    }

    #[test]
    fn points_split_legally() {
        // Degenerate rectangles (points) exercise zero-area math.
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStarAxis,
        ] {
            let entries: Vec<Entry<2>> = (0..11)
                .map(|i| {
                    let f = i as f64 / 10.0;
                    Entry::data(Rect::new([f, f * f], [f, f * f]), i)
                })
                .collect();
            let cap = NodeCapacity::new(10).unwrap();
            check_split(policy, entries, cap);
        }
    }

    #[test]
    fn tags_round_trip() {
        for p in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStarAxis,
        ] {
            assert_eq!(SplitPolicy::from_tag(p.tag()), p);
        }
        assert_eq!(SplitPolicy::from_tag(99), SplitPolicy::Quadratic);
    }

    #[test]
    fn rstar_prefers_low_overlap() {
        // 4 squares in a row: the best 2/2 split along x has zero overlap.
        let entries: Vec<Entry<2>> = (0..4)
            .map(|i| Entry::data(Rect::new([i as f64, 0.0], [i as f64 + 0.9, 1.0]), i as u64))
            .collect();
        let cap = NodeCapacity::with_min(3, 1).unwrap();
        let (a, b) = SplitPolicy::RStarAxis.split(entries, cap);
        let mbr_a = Rect::union_all(a.iter().map(|e| &e.rect));
        let mbr_b = Rect::union_all(b.iter().map(|e| &e.rect));
        assert!(mbr_a.intersection(&mbr_b).map_or(0.0, |r| r.area()) == 0.0);
    }
}
