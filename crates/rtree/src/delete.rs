//! Guttman deletion with tree condensation.
//!
//! The whole operation — removal, dissolving underfull nodes, orphan
//! reinsertion, and root shrinking — runs as **one** staged mutation: an
//! I/O error anywhere in that sequence abandons the staging overlay with
//! the committed tree untouched, so orphans can never be half-reinserted
//! or entries silently lost.

use geom::Rect;
use obs::flight::EventKind;
use obs::{LazyCounter, LazyHistogram};

use crate::tree::Staging;
use crate::{Entry, RTree, Result};

/// Orphaned entries re-inserted by CondenseTree, and the distribution
/// of the subtree levels they went back in at (0 = single data entry;
/// higher = a whole orphaned subtree — the "re-insert depth").
static REINSERTS: LazyCounter = LazyCounter::new("rtree.delete.reinserts");
static REINSERT_LEVEL: LazyHistogram = LazyHistogram::new("rtree.delete.reinsert_level");

/// Result of the recursive removal step.
enum Outcome<const D: usize> {
    NotFound,
    /// The entry was removed somewhere below; `mbr` is the child's new
    /// MBR and `underfull` says whether it dropped below min fill.
    Removed {
        mbr: Rect<D>,
        underfull: bool,
    },
}

impl<const D: usize> RTree<D> {
    /// Delete the data object with exactly this bounding rectangle and
    /// identifier. Returns whether an entry was found and removed.
    ///
    /// Follows Guttman: FindLeaf locates the record, CondenseTree
    /// dissolves underfull nodes on the path and reinserts their entries
    /// at their original level, and a root with a single child is
    /// shortened away.
    pub fn delete(&mut self, rect: &Rect<D>, data: u64) -> Result<bool> {
        self.check_poisoned()?;
        let mut st = self.begin_staging();
        match self.staged_delete(&mut st, rect, data) {
            Ok(false) => {
                self.abandon_staging(st);
                Ok(false)
            }
            Ok(true) => {
                st.len -= 1;
                self.commit_staging(st)?;
                Ok(true)
            }
            Err(e) => {
                self.abandon_staging(st);
                Err(e)
            }
        }
    }

    /// Delete every entry intersecting `region`, returning how many were
    /// removed. A bulk convenience built on [`delete`](Self::delete).
    pub fn delete_region(&mut self, region: &Rect<D>) -> Result<u64> {
        let victims = self.query_region(region)?;
        let mut removed = 0;
        for (rect, id) in victims {
            if self.delete(&rect, id)? {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Phase 1 of deletion: compute the entire post-delete tree into the
    /// staging overlay. Returns whether the entry was found (false means
    /// the overlay holds nothing worth committing).
    pub(crate) fn staged_delete(
        &mut self,
        st: &mut Staging<D>,
        rect: &Rect<D>,
        data: u64,
    ) -> Result<bool> {
        let mut orphans: Vec<(u32, Entry<D>)> = Vec::new();
        let root = st.root;
        let outcome = self.staged_remove_below(st, root, rect, data, &mut orphans)?;
        if !matches!(outcome, Outcome::Removed { .. }) {
            debug_assert!(orphans.is_empty());
            return Ok(false);
        }

        // Reinsert orphaned entries at their recorded level. Reinserting
        // can itself split nodes and change the height, so levels are
        // re-validated against the staged height each time.
        while let Some((level, entry)) = orphans.pop() {
            if level < st.height {
                REINSERTS.inc();
                REINSERT_LEVEL.record(u64::from(level));
                obs::flight::record(EventKind::Reinsert, u64::from(level), entry.payload);
                self.staged_insert_entry(st, entry, level)?;
            } else {
                // The tree shrank below the orphan's level (can happen
                // when the root collapsed): dissolve the orphaned subtree
                // one level and retry its children.
                let node = self.staged_read(st, entry.child_page())?;
                st.free(entry.child_page());
                for e in node.entries {
                    orphans.push((node.level, e));
                }
            }
        }

        // Shorten the tree: an internal root with one child is replaced by
        // that child; an empty internal root degenerates to an empty leaf.
        loop {
            let node = self.staged_read(st, st.root)?;
            if node.is_leaf() || node.len() != 1 {
                break;
            }
            let child = node.entries[0].child_page();
            st.free(st.root);
            st.root = child;
            st.height -= 1;
        }
        Ok(true)
    }

    fn staged_remove_below(
        &mut self,
        st: &mut Staging<D>,
        page: storage::PageId,
        rect: &Rect<D>,
        data: u64,
        orphans: &mut Vec<(u32, Entry<D>)>,
    ) -> Result<Outcome<D>> {
        let mut node = self.staged_read(st, page)?;
        if node.is_leaf() {
            let Some(pos) = node
                .entries
                .iter()
                .position(|e| e.payload == data && e.rect == *rect)
            else {
                return Ok(Outcome::NotFound);
            };
            node.entries.remove(pos);
            let is_root = page == st.root;
            let underfull = !is_root && node.len() < self.capacity().min();
            let mbr = node.mbr();
            st.write(page, node);
            return Ok(Outcome::Removed { mbr, underfull });
        }

        // FindLeaf: descend only into children whose MBR contains the
        // target rectangle.
        let candidates: Vec<usize> = (0..node.len())
            .filter(|&i| node.entries[i].rect.contains_rect(rect))
            .collect();
        for idx in candidates {
            let child_page = node.entries[idx].child_page();
            match self.staged_remove_below(st, child_page, rect, data, orphans)? {
                Outcome::NotFound => continue,
                Outcome::Removed { mbr, underfull } => {
                    if underfull {
                        // CondenseTree: dissolve the child, orphaning its
                        // entries for reinsertion at their level.
                        let child = self.staged_read(st, child_page)?;
                        for e in child.entries {
                            orphans.push((child.level, e));
                        }
                        st.free(child_page);
                        node.entries.remove(idx);
                    } else {
                        node.entries[idx].rect = mbr;
                    }
                    let is_root = page == st.root;
                    let under = !is_root && node.len() < self.capacity().min();
                    let mbr = node.mbr();
                    st.write(page, node);
                    return Ok(Outcome::Removed {
                        mbr,
                        underfull: under,
                    });
                }
            }
        }
        Ok(Outcome::NotFound)
    }
}

#[cfg(test)]
mod tests {
    use crate::{NodeCapacity, RTree, SplitPolicy};
    use geom::{Point, Rect};
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use storage::{BufferPool, MemDisk};

    fn new_tree(cap: usize) -> RTree<2> {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk, 256));
        RTree::create(pool, NodeCapacity::new(cap).unwrap()).unwrap()
    }

    fn square(x: f64, y: f64, s: f64) -> Rect<2> {
        Rect::new([x, y], [x + s, y + s])
    }

    #[test]
    fn delete_only_entry() {
        let mut t = new_tree(4);
        let r = square(0.1, 0.1, 0.2);
        t.insert(r, 1).unwrap();
        assert!(t.delete(&r, 1).unwrap());
        assert!(t.is_empty());
        assert!(t.query_region(&Rect::unit()).unwrap().is_empty());
        t.validate(true).unwrap();
        // Deleting again finds nothing.
        assert!(!t.delete(&r, 1).unwrap());
    }

    #[test]
    fn delete_requires_exact_match() {
        let mut t = new_tree(4);
        let r = square(0.1, 0.1, 0.2);
        t.insert(r, 1).unwrap();
        assert!(!t.delete(&r, 2).unwrap(), "wrong id must not match");
        assert!(!t.delete(&square(0.1, 0.1, 0.21), 1).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_delete_churn_stays_valid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut t = new_tree(6);
        let mut live: Vec<(Rect<2>, u64)> = Vec::new();
        for i in 0..600u64 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let r = square(rng.gen_range(0.0..0.9), rng.gen_range(0.0..0.9), 0.05);
                t.insert(r, i).unwrap();
                live.push((r, i));
            } else {
                let idx = rng.gen_range(0..live.len());
                let (r, id) = live.swap_remove(idx);
                assert!(t.delete(&r, id).unwrap(), "live entry {id} must delete");
            }
        }
        assert_eq!(t.len() as usize, live.len());
        t.validate(false).unwrap();
        // Everything still findable.
        for (r, id) in live.iter().take(100) {
            let hits = t.query_point(&r.center()).unwrap();
            assert!(hits.iter().any(|(_, i)| i == id), "entry {id} lost");
        }
    }

    #[test]
    fn drain_to_empty() {
        let mut t = new_tree(5);
        let mut items = Vec::new();
        for i in 0..200u64 {
            let f = (i % 20) as f64 / 20.0;
            let g = (i / 20) as f64 / 10.0;
            let r = square(f, g, 0.03);
            t.insert(r, i).unwrap();
            items.push((r, i));
        }
        let before = t.height();
        assert!(before > 1);
        for (r, id) in &items {
            assert!(t.delete(r, *id).unwrap());
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1, "tree must shrink back to a single leaf");
        t.validate(true).unwrap();
    }

    #[test]
    fn delete_region_bulk() {
        let mut t = new_tree(8);
        for i in 0..100u64 {
            let f = (i % 10) as f64 / 10.0;
            let g = (i / 10) as f64 / 10.0;
            t.insert(square(f, g, 0.05), i).unwrap();
        }
        // Remove the lower-left quadrant.
        let q = Rect::new([0.0, 0.0], [0.449, 0.449]);
        let removed = t.delete_region(&q).unwrap();
        assert!(removed > 0);
        assert_eq!(t.len(), 100 - removed);
        assert!(t.query_region(&q).unwrap().is_empty());
        t.validate(false).unwrap();
    }

    #[test]
    fn reinserted_orphans_remain_searchable() {
        // Force condensation by deleting clustered entries from a deep
        // tree, then verify global searchability.
        let mut t = new_tree(4);
        let mut items = Vec::new();
        for i in 0..128u64 {
            let x = (i % 16) as f64 / 16.0;
            let y = (i / 16) as f64 / 8.0;
            let r = square(x, y, 0.02);
            t.insert(r, i).unwrap();
            items.push((r, i));
        }
        // Delete a whole stripe (same leaves) to trigger underflow.
        for (r, id) in items.iter().filter(|(_, id)| id % 16 < 4) {
            assert!(t.delete(r, *id).unwrap());
        }
        t.validate(false).unwrap();
        for (r, id) in items.iter().filter(|(_, id)| id % 16 >= 4) {
            let hits = t
                .query_point(&Point::new([r.center().coord(0), r.center().coord(1)]))
                .unwrap();
            assert!(
                hits.iter().any(|(_, i)| i == id),
                "entry {id} lost after condensation"
            );
        }
    }

    #[test]
    fn delete_works_across_policies() {
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStarAxis,
        ] {
            let mut t = new_tree(5);
            t.set_split_policy(policy);
            let mut items = Vec::new();
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            for i in 0..150u64 {
                let r = square(rng.gen_range(0.0..0.9), rng.gen_range(0.0..0.9), 0.04);
                t.insert(r, i).unwrap();
                items.push((r, i));
            }
            for (r, id) in items.iter().step_by(2) {
                assert!(t.delete(r, *id).unwrap(), "{policy:?}");
            }
            assert_eq!(t.len(), 75);
            t.validate(false)
                .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        }
    }
}
