//! Epoch-based snapshot isolation over a WAL-attached R-tree.
//!
//! [`SharedRTree`] wraps one writer tree behind a mutex and publishes an
//! immutable `(root, height, len)` triple per *epoch*. Because commits
//! are copy-on-write ([`RTree::attach_wal`]), a published root names a
//! frozen tree: no page reachable from it is ever overwritten in place,
//! so readers traverse it without any locking at all — [`snapshot`]
//! (SharedRTree::snapshot) just pins the current epoch and hands back a
//! read-only [`RTree`] view over a shared buffer pool.
//!
//! What keeps a snapshot consistent is garbage discipline, not locking:
//! pages a commit supersedes are parked per-epoch and only returned to
//! the allocator once every snapshot pinned at an older epoch has been
//! dropped. The WAL keeps even that reuse honest across crashes (reuse
//! additionally waits for the next checkpoint — see
//! `NodeStore::extend_free` in WAL mode).
//!
//! Writers serialize on the tree mutex for the *staging* half of a
//! commit only; the fsync half ([`RTree::finish_commit_cow`]'s logic,
//! inlined here) runs after the mutex drops, so concurrent writers pile
//! into one group-commit batch and share a single fsync. The in-memory
//! state is published before durability, which is sound because WAL
//! durability is prefix-closed: a crash loses a *suffix* of published
//! states, never a middle, and recovery lands exactly on a
//! previously-published epoch.

use std::collections::BTreeMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard};

use geom::Rect;
use storage::{BufferPool, PageId, Wal};

use crate::index::{IndexStats, SpatialIndex};
use crate::tree::{StagedTx, WAL_TREE_COMMITS};
use crate::{Entry, RTree, Result};
use geom::Point;
use storage::BufferStats;

/// The state triple readers pin.
#[derive(Clone, Copy)]
struct Published {
    root: PageId,
    height: u32,
    len: u64,
}

/// Epoch bookkeeping: which epochs readers hold, and which superseded
/// pages wait for them.
struct SnapState {
    /// Monotonic, bumped once per committed write.
    epoch: u64,
    published: Published,
    /// Pinned epoch -> number of live snapshots at it.
    pins: BTreeMap<u64, usize>,
    /// `(retire_epoch, pages)`: pages superseded by the commit that
    /// created `retire_epoch`, still reachable from snapshots pinned at
    /// any older epoch.
    garbage: Vec<(u64, Vec<PageId>)>,
    /// Pages past every pin, waiting for the next writer to hand them
    /// back to the store (frees need the writer's session lists).
    ready: Vec<PageId>,
}

struct Shared<const D: usize> {
    writer: Mutex<RTree<D>>,
    /// Template for reader views: a reader clone made once at
    /// construction, so `snapshot()` never touches the writer mutex.
    base: RTree<D>,
    state: Mutex<SnapState>,
    wal: Arc<Wal>,
    pool: Arc<BufferPool>,
    /// LSN of the newest meta image written through the pool. Finishers
    /// run unordered once the writer mutex drops; the gate keeps a stale
    /// meta from landing *after* a newer one (a checkpoint flushing the
    /// stale image past the watermark would otherwise lose commits).
    meta_gate: Mutex<u64>,
}

/// A concurrently readable, WAL-durable R-tree.
///
/// Cheap to clone (it is an `Arc` handle). Writers serialize; readers
/// never block and never see a half-applied mutation.
///
/// ```
/// use std::sync::Arc;
/// use geom::Rect;
/// use rtree::{NodeCapacity, RTree, SharedRTree};
/// use storage::{BufferPool, MemDisk, MemLogStore, Wal, WalOptions};
///
/// let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 64));
/// let tree = RTree::<2>::create(pool, NodeCapacity::new(8).unwrap()).unwrap();
/// let wal = Wal::create(MemLogStore::new(), 1, WalOptions::default()).unwrap();
/// let shared = SharedRTree::new(tree, wal).unwrap();
///
/// shared.insert(Rect::new([0.1, 0.1], [0.2, 0.2]), 7).unwrap();
/// let snap = shared.snapshot();
/// shared.insert(Rect::new([0.5, 0.5], [0.6, 0.6]), 8).unwrap();
/// // The snapshot still sees exactly one entry.
/// assert_eq!(snap.len(), 1);
/// assert_eq!(shared.snapshot().len(), 2);
/// ```
pub struct SharedRTree<const D: usize> {
    inner: Arc<Shared<D>>,
}

impl<const D: usize> Clone for SharedRTree<D> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

/// A pinned, immutable view of one published epoch. Dereferences to
/// [`RTree`], so every read-only tree API works on it. Dropping it
/// unpins the epoch and may release superseded pages for reuse.
pub struct Snapshot<const D: usize> {
    tree: RTree<D>,
    epoch: u64,
    shared: Arc<Shared<D>>,
}

impl<const D: usize> SharedRTree<D> {
    /// Wrap `tree` for shared use, attaching `wal` (the tree must not
    /// already have one). Requires a v2 file, like
    /// [`RTree::attach_wal`].
    pub fn new(mut tree: RTree<D>, wal: Arc<Wal>) -> Result<Self> {
        if !tree.is_wal_attached() {
            tree.attach_wal(wal.clone())?;
        }
        tree.set_collect_frees(true);
        let published = Published {
            root: tree.root,
            height: tree.height,
            len: tree.len(),
        };
        let base = tree.reader_at(published.root, published.height, published.len);
        let pool = tree.pool().clone();
        Ok(Self {
            inner: Arc::new(Shared {
                writer: Mutex::new(tree),
                base,
                state: Mutex::new(SnapState {
                    epoch: 0,
                    published,
                    pins: BTreeMap::new(),
                    garbage: Vec::new(),
                    ready: Vec::new(),
                }),
                wal,
                pool,
                meta_gate: Mutex::new(0),
            }),
        })
    }

    /// Pin the current epoch and return a read-only view of it. Never
    /// blocks on writers.
    pub fn snapshot(&self) -> Snapshot<D> {
        let _tspan = obs::trace::span("shared.snapshot_pin");
        let mut st = lock(&self.inner.state);
        let epoch = st.epoch;
        *st.pins.entry(epoch).or_insert(0) += 1;
        let p = st.published;
        drop(st);
        Snapshot {
            tree: self.inner.base.reader_at(p.root, p.height, p.len),
            epoch,
            shared: self.inner.clone(),
        }
    }

    /// Insert, durably (see [`RTree::insert`]). Returns once the commit
    /// is fsync-durable; the new state is visible to snapshots taken
    /// after the in-memory publish, which precedes the fsync.
    pub fn insert(&self, rect: Rect<D>, data: u64) -> Result<()> {
        self.write_op(|tree| {
            tree.check_poisoned()?;
            let mut st = tree.begin_staging();
            st.len += 1;
            if let Err(e) = tree.staged_insert_entry(&mut st, Entry::data(rect, data), 0) {
                tree.abandon_staging(st);
                return Err(e);
            }
            tree.stage_commit_cow(st).map(Some)
        })
        .map(|_| ())
    }

    /// Delete, durably (see [`RTree::delete`]). Returns whether an entry
    /// was found and removed.
    pub fn delete(&self, rect: &Rect<D>, data: u64) -> Result<bool> {
        self.write_op(|tree| {
            tree.check_poisoned()?;
            let mut st = tree.begin_staging();
            match tree.staged_delete(&mut st, rect, data) {
                Ok(false) => {
                    tree.abandon_staging(st);
                    Ok(None)
                }
                Ok(true) => {
                    st.len -= 1;
                    tree.stage_commit_cow(st).map(Some)
                }
                Err(e) => {
                    tree.abandon_staging(st);
                    Err(e)
                }
            }
        })
    }

    /// Checkpoint: flush the pool, advance the WAL watermark, recycle
    /// fully-applied segments (see [`RTree::persist`]).
    pub fn checkpoint(&self) -> Result<()> {
        lock(&self.inner.writer).persist()
    }

    /// Run `f` against the writer tree (queries, `check`, stats). Blocks
    /// writers for the duration — prefer [`snapshot`](Self::snapshot)
    /// for reads.
    pub fn with_tree<R>(&self, f: impl FnOnce(&RTree<D>) -> R) -> R {
        f(&lock(&self.inner.writer))
    }

    /// Entry count of the newest published state.
    pub fn len(&self) -> u64 {
        lock(&self.inner.state).published.len
    }

    /// Whether the newest published state is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current epoch (bumped once per committed write).
    pub fn epoch(&self) -> u64 {
        lock(&self.inner.state).epoch
    }

    /// The write-ahead log commits go through.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.inner.wal
    }

    /// The staging half under the writer mutex, the fsync half outside
    /// it. `op` returns `None` for a no-op (nothing staged, nothing to
    /// commit). Returns whether a transaction was committed.
    fn write_op(&self, op: impl FnOnce(&mut RTree<D>) -> Result<Option<StagedTx>>) -> Result<bool> {
        // Covers staging, publish, and the shared leader fsync — the
        // wal.commit span below nests inside it.
        let _tspan = obs::trace::span("shared.commit");
        let mut tree = lock(&self.inner.writer);
        let Some(tx) = op(&mut tree)? else {
            return Ok(false);
        };

        // Publish: new epoch, new triple; park what this commit
        // superseded; release what every reader has moved past. The
        // writer mutex is still held, so epochs are published in commit
        // order.
        {
            let mut st = lock(&self.inner.state);
            st.epoch += 1;
            st.published = Published {
                root: tree.root,
                height: tree.height,
                len: tree.len(),
            };
            let frees = tree.take_pending_frees();
            if !frees.is_empty() {
                if st.pins.is_empty() {
                    st.ready.extend(frees);
                } else {
                    let retire = st.epoch;
                    st.garbage.push((retire, frees));
                }
            }
            let ready = std::mem::take(&mut st.ready);
            drop(st);
            if !ready.is_empty() {
                tree.release_pages(ready);
            }
        }
        drop(tree);

        // Durability, outside the writer mutex: every writer that
        // reaches here concurrently shares one leader fsync.
        let lsn = tx.lsn;
        let res = self.inner.wal.commit(lsn).and_then(|()| {
            let mut gate = lock(&self.inner.meta_gate);
            if lsn > *gate {
                self.inner.pool.write_page(tx.meta_page, &tx.meta_image)?;
                *gate = lsn;
            }
            Ok(())
        });
        match res {
            Ok(()) => {
                self.inner.wal.tx_applied(lsn);
                WAL_TREE_COMMITS.inc();
                Ok(true)
            }
            Err(e) => {
                // Published but not durable, and the WAL may still carry
                // the records into a later fsync: ambiguous, so poison.
                lock(&self.inner.writer).poisoned = true;
                Err(e.into())
            }
        }
    }
}

impl<const D: usize> Snapshot<D> {
    /// The epoch this snapshot is pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<const D: usize> Deref for Snapshot<D> {
    type Target = RTree<D>;
    fn deref(&self) -> &RTree<D> {
        &self.tree
    }
}

/// A pinned snapshot answers queries exactly like the paged tree it
/// froze — delegation, so `QueryExecutor` and anything else taking
/// `&dyn SpatialIndex` can serve from an epoch without special cases
/// (deref coercion does not apply to trait-object casts).
impl<const D: usize> SpatialIndex<D> for Snapshot<D> {
    fn for_each_intersecting(
        &self,
        query: &Rect<D>,
        visit: &mut dyn FnMut(Rect<D>, u64),
    ) -> Result<()> {
        SpatialIndex::for_each_intersecting(&self.tree, query, visit)
    }

    fn query(&self, query: &Rect<D>) -> Result<Vec<(Rect<D>, u64)>> {
        SpatialIndex::query(&self.tree, query)
    }

    fn query_point(&self, point: &Point<D>) -> Result<Vec<(Rect<D>, u64)>> {
        SpatialIndex::query_point(&self.tree, point)
    }

    fn len(&self) -> u64 {
        SpatialIndex::len(&self.tree)
    }

    fn stats(&self) -> IndexStats {
        SpatialIndex::stats(&self.tree)
    }

    fn buffer_stats(&self) -> Option<BufferStats> {
        SpatialIndex::buffer_stats(&self.tree)
    }
}

impl<const D: usize> Drop for Snapshot<D> {
    fn drop(&mut self) {
        let _tspan = obs::trace::span("shared.snapshot_unpin");
        let mut st = lock(&self.shared.state);
        if let Some(n) = st.pins.get_mut(&self.epoch) {
            *n -= 1;
            if *n == 0 {
                st.pins.remove(&self.epoch);
            }
        }
        // Pages retired at epoch `r` are reachable from snapshots pinned
        // strictly before `r`; once none remain, they move to `ready`
        // (the next writer hands them to the store).
        let min_pin = st.pins.keys().next().copied();
        let garbage = std::mem::take(&mut st.garbage);
        for (retire, pages) in garbage {
            match min_pin {
                Some(m) if m < retire => st.garbage.push((retire, pages)),
                _ => st.ready.extend(pages),
            }
        }
    }
}

/// Mutex acquisition that survives a poisoned lock: a reader panicking
/// mid-query must not wedge the tree (the data structures stay
/// consistent because all invariants are re-established before guards
/// drop).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeCapacity;
    use storage::{MemDisk, MemLogStore, WalOptions};

    fn square(i: u64) -> Rect<2> {
        let x = (i % 32) as f64 / 32.0;
        let y = (i / 32) as f64 / 32.0;
        Rect::new([x, y], [x + 0.02, y + 0.02])
    }

    fn shared(cap: usize) -> SharedRTree<2> {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 256));
        let tree = RTree::<2>::create(pool, NodeCapacity::new(cap).unwrap()).unwrap();
        let wal = Wal::create(MemLogStore::new(), 1, WalOptions::default()).unwrap();
        SharedRTree::new(tree, wal).unwrap()
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let t = shared(8);
        for i in 0..50 {
            t.insert(square(i), i).unwrap();
        }
        let snap = t.snapshot();
        for i in 50..100 {
            t.insert(square(i), i).unwrap();
        }
        assert_eq!(snap.len(), 50);
        assert_eq!(t.len(), 100);
        // The old epoch still answers queries over exactly its 50.
        let hits = snap
            .query_region(&Rect::new([0.0, 0.0], [1.0, 1.0]))
            .unwrap();
        assert_eq!(hits.len(), 50);
        drop(snap);
        let hits = t
            .snapshot()
            .query_region(&Rect::new([0.0, 0.0], [1.0, 1.0]))
            .unwrap();
        assert_eq!(hits.len(), 100);
    }

    #[test]
    fn deletes_are_invisible_to_pinned_snapshots() {
        let t = shared(6);
        for i in 0..80 {
            t.insert(square(i), i).unwrap();
        }
        let snap = t.snapshot();
        for i in 0..40 {
            assert!(t.delete(&square(i), i).unwrap());
        }
        assert_eq!(snap.len(), 80);
        for i in 0..40 {
            let hits = snap.query_region(&square(i)).unwrap();
            assert!(hits.iter().any(|&(_, id)| id == i), "entry {i} missing");
        }
        assert_eq!(t.len(), 40);
    }

    #[test]
    fn garbage_is_released_after_readers_drain() {
        let t = shared(8);
        for i in 0..100 {
            t.insert(square(i), i).unwrap();
        }
        let snap = t.snapshot();
        for i in 0..50 {
            t.delete(&square(i), i).unwrap();
        }
        {
            let st = lock(&t.inner.state);
            assert!(
                !st.garbage.is_empty(),
                "superseded pages must wait for the pinned reader"
            );
        }
        drop(snap);
        {
            let st = lock(&t.inner.state);
            assert!(st.garbage.is_empty(), "drop must promote garbage");
            assert!(!st.ready.is_empty());
        }
        // The next write hands `ready` back to the store; the allocator
        // audit must come out clean afterwards.
        t.insert(square(200), 200).unwrap();
        t.checkpoint().unwrap();
        t.with_tree(|tree| {
            let report = tree.check();
            assert!(report.is_clean(), "{report}");
        });
    }

    #[test]
    fn no_op_delete_commits_nothing() {
        let t = shared(8);
        t.insert(square(1), 1).unwrap();
        let e = t.epoch();
        assert!(!t.delete(&square(9), 9).unwrap());
        assert_eq!(t.epoch(), e, "a not-found delete must not publish");
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let t = shared(8);
        for i in 0..200 {
            t.insert(square(i), i).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let all = Rect::new([0.0, 0.0], [1.0, 1.0]);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = t.snapshot();
                    let hits = snap.query_region(&all).unwrap();
                    assert_eq!(
                        hits.len() as u64,
                        snap.len(),
                        "snapshot tore at epoch {}",
                        snap.epoch()
                    );
                }
            }));
        }
        let mut writers = Vec::new();
        for w in 0..2u64 {
            let t = t.clone();
            writers.push(std::thread::spawn(move || {
                for i in 0..150 {
                    let id = 1000 + w * 1000 + i;
                    t.insert(square(id % 1024), id).unwrap();
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(t.len(), 500);
        t.with_tree(|tree| {
            let report = tree.check();
            assert!(report.is_clean(), "{report}");
        });
    }
}
