//! `fsck`-style integrity checking.
//!
//! [`RTree::check`] walks the tree page by page and produces a
//! [`CheckReport`] instead of failing on the first problem — the
//! recovery-tool counterpart to [`RTree::validate`], which is a
//! fail-fast invariant assertion for tests. Where `validate` stops at
//! the first violated invariant and demands *exact* parent MBRs, `check`
//! keeps walking past corrupt pages, verifies what a repair tool needs
//! (decodable pages with intact checksums, level arithmetic, MBR
//! *containment*), and takes a census of unreachable pages.

use std::collections::HashSet;

use geom::Rect;
use storage::{CatalogEntry, PageAllocator, PageId};

use crate::store::{self, HEADER_LEN, KIND_HILBERT, KIND_RPLUS, KIND_RTREE};
use crate::{codec, RTree};

/// A problem found on one page.
#[derive(Debug, Clone)]
pub struct PageIssue {
    /// The offending page.
    pub page: PageId,
    /// Human-readable description of what is wrong.
    pub reason: String,
}

impl std::fmt::Display for PageIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.page, self.reason)
    }
}

/// Outcome of an [`RTree::check`] walk.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Pages on the underlying disk, including the meta page.
    pub pages_on_disk: u64,
    /// Pages reached from the root (corrupt ones included).
    pub pages_reachable: u64,
    /// Data entries seen across all readable leaves.
    pub leaf_entries: u64,
    /// Pages that failed to read or decode (bad magic, checksum
    /// mismatch, truncation, out-of-bounds child, I/O error …).
    pub corrupt: Vec<PageIssue>,
    /// Readable pages whose relationship to the rest of the tree is
    /// wrong (level arithmetic, MBR containment, double reachability,
    /// overfull nodes, entry-count mismatch).
    pub structural: Vec<PageIssue>,
    /// Leaked pages: allocated, but neither reachable from any cataloged
    /// tree, on the free list, a meta page, nor the superblock. Harmless
    /// lost space (a crash between a meta commit and its free-chain
    /// writes legitimately leaks), but a repair tool reclaims them.
    pub unreachable: Vec<PageId>,
    /// Length of the persistent free chain (0 for legacy v1 images,
    /// which keep no on-disk free list).
    pub free_pages: u64,
    /// Allocator accounting violations: an unreadable or cyclic free
    /// chain, and double frees — pages simultaneously on a free list and
    /// reachable from a tree, which a future allocation would corrupt.
    pub alloc_issues: Vec<PageIssue>,
}

impl CheckReport {
    /// No corruption, no structural damage and no allocator violations
    /// (unreachable pages are reported but do not make a tree unclean —
    /// a crash mid-persist legitimately leaks pages).
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.structural.is_empty() && self.alloc_issues.is_empty()
    }

    /// Total number of problems (corrupt + structural + allocator).
    pub fn issue_count(&self) -> usize {
        self.corrupt.len() + self.structural.len() + self.alloc_issues.len()
    }
}

impl std::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pages: {} on disk, {} reachable, {} free, {} leaked",
            self.pages_on_disk,
            self.pages_reachable,
            self.free_pages,
            self.unreachable.len()
        )?;
        writeln!(f, "leaf entries: {}", self.leaf_entries)?;
        for issue in &self.corrupt {
            writeln!(f, "corrupt   {issue}")?;
        }
        for issue in &self.structural {
            writeln!(f, "structure {issue}")?;
        }
        for issue in &self.alloc_issues {
            writeln!(f, "allocator {issue}")?;
        }
        if self.is_clean() {
            write!(f, "clean")
        } else {
            write!(f, "{} problem(s) found", self.issue_count())
        }
    }
}

/// What the parent recorded about a child, checked when the child is
/// visited.
struct Pend<const D: usize> {
    page: PageId,
    expected_level: Option<u32>,
    parent: Option<(PageId, Rect<D>)>,
}

impl<const D: usize> RTree<D> {
    /// Walk the tree page by page, verifying that every reachable page
    /// decodes (magic, checksum, bounds), that levels step down by one,
    /// and that each child's MBR lies inside what its parent recorded —
    /// collecting every problem instead of stopping at the first.
    ///
    /// Never returns an error: unreadable pages become entries in
    /// [`CheckReport::corrupt`], so a half-destroyed tree still yields a
    /// full damage report.
    pub fn check(&self) -> CheckReport {
        let mut report = CheckReport {
            pages_on_disk: self.pool().disk().num_pages(),
            ..CheckReport::default()
        };
        let mut seen: HashSet<PageId> = HashSet::new();
        let mut stack: Vec<Pend<D>> = vec![Pend {
            page: self.root,
            expected_level: Some(self.height - 1),
            parent: None,
        }];
        while let Some(Pend {
            page,
            expected_level,
            parent,
        }) = stack.pop()
        {
            if !seen.insert(page) {
                report.structural.push(PageIssue {
                    page,
                    reason: "reachable by more than one path".into(),
                });
                continue;
            }
            let decoded = self
                .pool()
                .with_page(page, |bytes| codec::decode::<D>(bytes, page));
            let node = match decoded {
                Err(e) => {
                    report.corrupt.push(PageIssue {
                        page,
                        reason: format!("unreadable: {e}"),
                    });
                    continue;
                }
                Ok(Err(e)) => {
                    report.corrupt.push(PageIssue {
                        page,
                        reason: e.to_string(),
                    });
                    continue;
                }
                Ok(Ok(node)) => node,
            };
            if let Some(expected) = expected_level {
                if node.level != expected {
                    report.structural.push(PageIssue {
                        page,
                        reason: format!("level {} where {expected} expected", node.level),
                    });
                }
            }
            if node.len() > self.capacity().max() {
                report.structural.push(PageIssue {
                    page,
                    reason: format!(
                        "{} entries exceed capacity {}",
                        node.len(),
                        self.capacity().max()
                    ),
                });
            }
            if let Some((parent_page, recorded)) = parent {
                if !node.is_empty() && !recorded.contains_rect(&node.mbr()) {
                    report.structural.push(PageIssue {
                        page,
                        reason: format!(
                            "MBR {} escapes the rectangle {recorded} recorded by {parent_page}",
                            node.mbr()
                        ),
                    });
                }
            }
            if node.is_leaf() {
                report.leaf_entries += node.len() as u64;
            } else {
                for e in &node.entries {
                    stack.push(Pend {
                        page: e.child_page(),
                        expected_level: Some(node.level - 1),
                        parent: Some((page, e.rect)),
                    });
                }
            }
        }
        report.pages_reachable = seen.len() as u64;

        if report.corrupt.is_empty() && report.leaf_entries != self.len() {
            report.structural.push(PageIssue {
                page: self.root,
                reason: format!(
                    "tree records {} entries but leaves hold {}",
                    self.len(),
                    report.leaf_entries
                ),
            });
        }

        self.audit_allocation(&seen, &mut report);
        report
    }

    /// The allocator audit: every allocated page must be accounted for —
    /// reachable from *some* cataloged tree, on the persistent free
    /// chain, on this session's free list, a meta page, or the
    /// superblock. Anything else is leaked ([`CheckReport::unreachable`]);
    /// a page accounted as both free and reachable is a double free
    /// ([`CheckReport::alloc_issues`]).
    fn audit_allocation(&self, seen: &HashSet<PageId>, report: &mut CheckReport) {
        let mut accounted: HashSet<PageId> = seen.clone();
        let mut on_chain: HashSet<PageId> = HashSet::new();
        accounted.insert(PageId(0)); // v2 superblock / v1 meta page
        if let Some(alloc) = self.store.allocator() {
            match alloc.free_list() {
                Ok(chain) => {
                    report.free_pages = chain.len() as u64;
                    for &p in &chain {
                        if seen.contains(&p) {
                            report.alloc_issues.push(PageIssue {
                                page: p,
                                reason: "on the free chain but reachable from the tree \
                                         (double free)"
                                    .into(),
                            });
                        }
                    }
                    on_chain.extend(chain.iter().copied());
                    accounted.extend(chain);
                }
                Err(e) => report.alloc_issues.push(PageIssue {
                    page: PageId(0),
                    reason: format!("free chain unreadable: {e}"),
                }),
            }
            for entry in alloc.trees() {
                accounted.insert(entry.meta_page);
                if entry.meta_page != self.store.meta_page() {
                    self.audit_other_tree(alloc, &entry, seen, &mut accounted, report);
                }
            }
        }
        // A legacy v1 image keeps no on-disk free list, so after a
        // reopen only the session list below accounts for freed pages —
        // earlier sessions' frees surface as leaked.
        let session_lists = self
            .store
            .session_free()
            .iter()
            .chain(self.store.session_deferred())
            .chain(&self.pending_frees);
        for &p in session_lists {
            if seen.contains(&p) {
                report.alloc_issues.push(PageIssue {
                    page: p,
                    reason: "on the session free list but reachable from the tree (double free)"
                        .into(),
                });
            }
            accounted.insert(p);
        }
        self.audit_durable_root(&on_chain, report);
        for i in 0..report.pages_on_disk {
            let p = PageId(i);
            if !accounted.contains(&p) {
                report.unreachable.push(p);
            }
        }
    }

    /// Audit the *durable* root — the one the superblock's meta page
    /// records, which is what a reopen after a crash would traverse.
    ///
    /// The live root legitimately runs ahead of the durable one between
    /// persists, and a durable root sitting on the *session* free list
    /// with its content intact is the normal state of an unpersisted
    /// root swap. What must never happen is the durable root pointing at
    /// a page the allocator could hand out again: on the persistent free
    /// chain, stamped with the free-page magic, or past the end of the
    /// file. A reopen would adopt that root and a later allocation would
    /// scribble over it — the crash-window this audit exists to flag.
    fn audit_durable_root(&self, on_chain: &HashSet<PageId>, report: &mut CheckReport) {
        let Ok(durable) = self.store.read_meta() else {
            // An unreadable durable meta is its own (already reported)
            // problem when the tree is reopened; the live walk above has
            // nothing to cross-check against.
            return;
        };
        if durable.root == self.root {
            return;
        }
        let p = durable.root;
        if p.index() >= report.pages_on_disk {
            report.alloc_issues.push(PageIssue {
                page: p,
                reason: "durable meta roots the tree past the end of the file (stale root)".into(),
            });
            return;
        }
        if on_chain.contains(&p) {
            report.alloc_issues.push(PageIssue {
                page: p,
                reason: "durable meta roots the tree at a page on the free chain \
                         (stale root at a freed page)"
                    .into(),
            });
            return;
        }
        let disk = self.pool().disk();
        let mut page = vec![0u8; disk.page_size()];
        if disk.read_page(p, &mut page).is_ok()
            && page.len() >= 4
            && page[..4] == storage::FREE_PAGE_MAGIC.to_le_bytes()
        {
            report.alloc_issues.push(PageIssue {
                page: p,
                reason: "durable meta roots the tree at a freed page (stale root)".into(),
            });
        }
    }

    /// Best-effort reachability walk of another cataloged tree, variant-
    /// agnostic: the shared node header gives level and entry count, and
    /// the tree's recorded kind/dims give the entry stride and where the
    /// child page sits inside an entry. Checksums are not verified here —
    /// this accounts pages, it does not validate the other tree.
    fn audit_other_tree(
        &self,
        alloc: &PageAllocator,
        entry: &CatalogEntry,
        seen: &HashSet<PageId>,
        accounted: &mut HashSet<PageId>,
        report: &mut CheckReport,
    ) {
        let disk = self.pool().disk().clone();
        let meta = match store::read_tree_meta(disk.as_ref(), alloc, &entry.name) {
            Ok(meta) => meta,
            Err(e) => {
                report.alloc_issues.push(PageIssue {
                    page: entry.meta_page,
                    reason: format!("tree '{}': meta unreadable: {e}", entry.name),
                });
                return;
            }
        };
        let Some((entry_size, child_off)) = entry_layout(meta.kind, meta.dims) else {
            report.alloc_issues.push(PageIssue {
                page: entry.meta_page,
                reason: format!("tree '{}': unknown kind {}", entry.name, meta.kind),
            });
            return;
        };
        let mut stack = vec![meta.root];
        while let Some(page) = stack.pop() {
            if !accounted.insert(page) {
                if seen.contains(&page) {
                    report.alloc_issues.push(PageIssue {
                        page,
                        reason: format!("reachable from both this tree and tree '{}'", entry.name),
                    });
                }
                continue;
            }
            let children = self.pool().with_page(page, |bytes| {
                let mut children = Vec::new();
                if bytes.len() < HEADER_LEN {
                    return children;
                }
                let level = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
                let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
                let need = HEADER_LEN + count * entry_size;
                if level == 0 || need > bytes.len() {
                    return children;
                }
                for i in 0..count {
                    let off = HEADER_LEN + i * entry_size + child_off;
                    let child = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                    children.push(PageId(child));
                }
                children
            });
            match children {
                Ok(children) => stack.extend(children),
                Err(e) => report.alloc_issues.push(PageIssue {
                    page,
                    reason: format!("tree '{}': page unreadable: {e}", entry.name),
                }),
            }
        }
    }
}

/// `(entry stride, child-page offset within an entry)` for a tree kind,
/// or `None` for a kind this build does not know. Shared with the
/// recovery sweep, which walks every cataloged tree the same way.
pub(crate) fn entry_layout(kind: u32, dims: u32) -> Option<(usize, usize)> {
    let dims = dims as usize;
    match kind {
        KIND_RTREE | KIND_RPLUS => Some((dims * 16 + 8, dims * 16)),
        KIND_HILBERT => Some((56, 32)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BulkLoader, Entry, NodeCapacity};
    use std::sync::Arc;
    use storage::{BufferPool, Disk, MemDisk};

    fn squares(n: u64) -> Vec<Entry<2>> {
        (0..n)
            .map(|i| {
                let x = (i % 32) as f64 / 32.0;
                let y = (i / 32) as f64 / 32.0;
                Entry::data(Rect::new([x, y], [x + 0.02, y + 0.02]), i)
            })
            .collect()
    }

    fn packed(n: u64) -> (Arc<MemDisk>, RTree<2>) {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk.clone() as Arc<dyn Disk>, 64));
        let tree = BulkLoader::new(NodeCapacity::new(16).unwrap())
            .load(pool, squares(n), &mut |_, _| {})
            .unwrap();
        (disk, tree)
    }

    #[test]
    fn clean_tree_reports_clean() {
        let (_d, tree) = packed(500);
        let report = tree.check();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.leaf_entries, 500);
        assert!(report.pages_reachable > 1);
        assert!(report.unreachable.is_empty(), "packed load strands pages");
    }

    #[test]
    fn flipped_byte_is_reported_not_fatal() {
        let (disk, tree) = packed(500);
        tree.pool().flush().unwrap();
        tree.pool().clear().unwrap();
        // Corrupt a non-root node page on the raw disk.
        let victim = PageId(2);
        assert_ne!(victim, tree.root_page());
        let mut page = vec![0u8; disk.page_size()];
        disk.read_page(victim, &mut page).unwrap();
        page[40] ^= 0xFF;
        disk.write_page(victim, &page).unwrap();

        let report = tree.check();
        assert!(!report.is_clean());
        assert!(
            report.corrupt.iter().any(|i| i.page == victim),
            "corrupted page not flagged: {report}"
        );
    }

    #[test]
    fn deleted_pages_reach_the_free_chain_not_the_leak_report() {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk.clone() as Arc<dyn Disk>, 64));
        let mut tree = RTree::<2>::create(pool.clone(), NodeCapacity::new(4).unwrap()).unwrap();
        let items = squares(64);
        for e in &items {
            tree.insert(e.rect, e.payload).unwrap();
        }
        for e in items.iter().take(48) {
            tree.delete(&e.rect, e.payload).unwrap();
        }
        // With the live tree the session free list accounts for released
        // pages.
        let report = tree.check();
        assert!(report.is_clean(), "{report}");
        assert!(report.unreachable.is_empty());
        let freed = tree.store().session_free().len();
        assert!(freed > 0, "delete-heavy workload must release pages");

        // Reopened, the frees live on the persistent chain: nothing is
        // leaked, and the audit sees the full chain.
        tree.persist().unwrap();
        let pool2 = Arc::new(BufferPool::new(disk as Arc<dyn Disk>, 64));
        let reopened = RTree::<2>::open(pool2).unwrap();
        let report = reopened.check();
        assert!(report.is_clean(), "{report}");
        assert!(
            report.unreachable.is_empty(),
            "freed pages must be on the free chain, not leaked: {report}"
        );
        assert_eq!(report.free_pages, freed as u64);
    }

    #[test]
    fn stale_durable_root_at_freed_page_is_flagged() {
        // Reproduce the crash window: a persist's free-chain writes land
        // but the meta write does not, leaving the durable meta rooting
        // the tree at a page that is now on the free chain.
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk.clone() as Arc<dyn Disk>, 64));
        let mut tree = RTree::<2>::create(pool, NodeCapacity::new(4).unwrap()).unwrap();
        for e in squares(64) {
            tree.insert(e.rect, e.payload).unwrap();
        }
        tree.persist().unwrap();

        // Capture the durable meta as of now (root R1).
        let meta_page = tree.store().meta_page();
        let mut old_meta = vec![0u8; disk.page_size()];
        disk.read_page(meta_page, &mut old_meta).unwrap();
        let old_root = tree.root_page();

        // Shrink the tree until the root changes and R1 is freed, then
        // persist so R1 reaches the persistent free chain.
        for e in squares(64).iter().take(60) {
            tree.delete(&e.rect, e.payload).unwrap();
        }
        assert_ne!(tree.root_page(), old_root, "root must have moved");
        tree.persist().unwrap();

        // Clean before the "crash": the durable meta matches the tree.
        assert!(tree.check().is_clean());

        // The crash: the old meta bytes come back (torn meta write).
        disk.write_page(meta_page, &old_meta).unwrap();
        let report = tree.check();
        assert!(
            report
                .alloc_issues
                .iter()
                .any(|i| i.page == old_root && i.reason.contains("stale root")),
            "stale durable root not flagged: {report}"
        );
    }

    #[test]
    fn unpersisted_root_swap_is_not_flagged() {
        // Between persists the durable root legitimately lags the live
        // one, sitting on the *session* free list with content intact —
        // that must stay clean.
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk as Arc<dyn Disk>, 64));
        let mut tree = RTree::<2>::create(pool, NodeCapacity::new(4).unwrap()).unwrap();
        for e in squares(64) {
            tree.insert(e.rect, e.payload).unwrap();
        }
        tree.persist().unwrap();
        let old_root = tree.root_page();
        for e in squares(64).iter().take(60) {
            tree.delete(&e.rect, e.payload).unwrap();
        }
        assert_ne!(tree.root_page(), old_root);
        let report = tree.check();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn double_free_is_flagged_by_the_audit() {
        let (_d, mut tree) = packed(200);
        // Simulate the bug the audit exists to catch: a reachable page
        // lands on the free list.
        let victim = tree.root_page();
        tree.free_page(victim);
        let report = tree.check();
        assert!(!report.is_clean());
        assert!(
            report
                .alloc_issues
                .iter()
                .any(|i| i.page == victim && i.reason.contains("double free")),
            "{report}"
        );
    }
}
