//! `fsck`-style integrity checking.
//!
//! [`RTree::check`] walks the tree page by page and produces a
//! [`CheckReport`] instead of failing on the first problem — the
//! recovery-tool counterpart to [`RTree::validate`], which is a
//! fail-fast invariant assertion for tests. Where `validate` stops at
//! the first violated invariant and demands *exact* parent MBRs, `check`
//! keeps walking past corrupt pages, verifies what a repair tool needs
//! (decodable pages with intact checksums, level arithmetic, MBR
//! *containment*), and takes a census of unreachable pages.

use std::collections::HashSet;

use geom::Rect;
use storage::PageId;

use crate::{codec, RTree};

/// A problem found on one page.
#[derive(Debug, Clone)]
pub struct PageIssue {
    /// The offending page.
    pub page: PageId,
    /// Human-readable description of what is wrong.
    pub reason: String,
}

impl std::fmt::Display for PageIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.page, self.reason)
    }
}

/// Outcome of an [`RTree::check`] walk.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Pages on the underlying disk, including the meta page.
    pub pages_on_disk: u64,
    /// Pages reached from the root (corrupt ones included).
    pub pages_reachable: u64,
    /// Data entries seen across all readable leaves.
    pub leaf_entries: u64,
    /// Pages that failed to read or decode (bad magic, checksum
    /// mismatch, truncation, out-of-bounds child, I/O error …).
    pub corrupt: Vec<PageIssue>,
    /// Readable pages whose relationship to the rest of the tree is
    /// wrong (level arithmetic, MBR containment, double reachability,
    /// overfull nodes, entry-count mismatch).
    pub structural: Vec<PageIssue>,
    /// Allocated pages that are neither reachable from the root, on the
    /// free list, nor the meta page. Harmless leaked space, but a repair
    /// tool reclaims them.
    pub unreachable: Vec<PageId>,
}

impl CheckReport {
    /// No corruption and no structural damage (unreachable pages are
    /// reported but do not make a tree unclean — deletions legitimately
    /// strand pages when the free list is not persisted).
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.structural.is_empty()
    }

    /// Total number of problems (corrupt + structural).
    pub fn issue_count(&self) -> usize {
        self.corrupt.len() + self.structural.len()
    }
}

impl std::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pages: {} on disk, {} reachable, {} unreachable",
            self.pages_on_disk,
            self.pages_reachable,
            self.unreachable.len()
        )?;
        writeln!(f, "leaf entries: {}", self.leaf_entries)?;
        for issue in &self.corrupt {
            writeln!(f, "corrupt   {issue}")?;
        }
        for issue in &self.structural {
            writeln!(f, "structure {issue}")?;
        }
        if self.is_clean() {
            write!(f, "clean")
        } else {
            write!(f, "{} problem(s) found", self.issue_count())
        }
    }
}

/// What the parent recorded about a child, checked when the child is
/// visited.
struct Pend<const D: usize> {
    page: PageId,
    expected_level: Option<u32>,
    parent: Option<(PageId, Rect<D>)>,
}

impl<const D: usize> RTree<D> {
    /// Walk the tree page by page, verifying that every reachable page
    /// decodes (magic, checksum, bounds), that levels step down by one,
    /// and that each child's MBR lies inside what its parent recorded —
    /// collecting every problem instead of stopping at the first.
    ///
    /// Never returns an error: unreadable pages become entries in
    /// [`CheckReport::corrupt`], so a half-destroyed tree still yields a
    /// full damage report.
    pub fn check(&self) -> CheckReport {
        let mut report = CheckReport {
            pages_on_disk: self.pool().disk().num_pages(),
            ..CheckReport::default()
        };
        let mut seen: HashSet<PageId> = HashSet::new();
        let mut stack: Vec<Pend<D>> = vec![Pend {
            page: self.root,
            expected_level: Some(self.height - 1),
            parent: None,
        }];
        while let Some(Pend {
            page,
            expected_level,
            parent,
        }) = stack.pop()
        {
            if !seen.insert(page) {
                report.structural.push(PageIssue {
                    page,
                    reason: "reachable by more than one path".into(),
                });
                continue;
            }
            let decoded = self
                .pool()
                .with_page(page, |bytes| codec::decode::<D>(bytes, page));
            let node = match decoded {
                Err(e) => {
                    report.corrupt.push(PageIssue {
                        page,
                        reason: format!("unreadable: {e}"),
                    });
                    continue;
                }
                Ok(Err(e)) => {
                    report.corrupt.push(PageIssue {
                        page,
                        reason: e.to_string(),
                    });
                    continue;
                }
                Ok(Ok(node)) => node,
            };
            if let Some(expected) = expected_level {
                if node.level != expected {
                    report.structural.push(PageIssue {
                        page,
                        reason: format!("level {} where {expected} expected", node.level),
                    });
                }
            }
            if node.len() > self.capacity().max() {
                report.structural.push(PageIssue {
                    page,
                    reason: format!(
                        "{} entries exceed capacity {}",
                        node.len(),
                        self.capacity().max()
                    ),
                });
            }
            if let Some((parent_page, recorded)) = parent {
                if !node.is_empty() && !recorded.contains_rect(&node.mbr()) {
                    report.structural.push(PageIssue {
                        page,
                        reason: format!(
                            "MBR {} escapes the rectangle {recorded} recorded by {parent_page}",
                            node.mbr()
                        ),
                    });
                }
            }
            if node.is_leaf() {
                report.leaf_entries += node.len() as u64;
            } else {
                for e in &node.entries {
                    stack.push(Pend {
                        page: e.child_page(),
                        expected_level: Some(node.level - 1),
                        parent: Some((page, e.rect)),
                    });
                }
            }
        }
        report.pages_reachable = seen.len() as u64;

        if report.corrupt.is_empty() && report.leaf_entries != self.len() {
            report.structural.push(PageIssue {
                page: self.root,
                reason: format!(
                    "tree records {} entries but leaves hold {}",
                    self.len(),
                    report.leaf_entries
                ),
            });
        }

        // Census of allocated-but-orphaned pages. Page 0 is the meta
        // page; pages on the in-memory free list are accounted for.
        let free: HashSet<PageId> = self.free.iter().copied().collect();
        for i in 1..report.pages_on_disk {
            let p = PageId(i);
            if !seen.contains(&p) && !free.contains(&p) {
                report.unreachable.push(p);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BulkLoader, Entry, NodeCapacity};
    use std::sync::Arc;
    use storage::{BufferPool, Disk, MemDisk};

    fn squares(n: u64) -> Vec<Entry<2>> {
        (0..n)
            .map(|i| {
                let x = (i % 32) as f64 / 32.0;
                let y = (i / 32) as f64 / 32.0;
                Entry::data(Rect::new([x, y], [x + 0.02, y + 0.02]), i)
            })
            .collect()
    }

    fn packed(n: u64) -> (Arc<MemDisk>, RTree<2>) {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk.clone() as Arc<dyn Disk>, 64));
        let tree = BulkLoader::new(NodeCapacity::new(16).unwrap())
            .load(pool, squares(n), &mut |_, _| {})
            .unwrap();
        (disk, tree)
    }

    #[test]
    fn clean_tree_reports_clean() {
        let (_d, tree) = packed(500);
        let report = tree.check();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.leaf_entries, 500);
        assert!(report.pages_reachable > 1);
        assert!(report.unreachable.is_empty(), "packed load strands pages");
    }

    #[test]
    fn flipped_byte_is_reported_not_fatal() {
        let (disk, tree) = packed(500);
        tree.pool().flush().unwrap();
        tree.pool().clear().unwrap();
        // Corrupt a non-root node page on the raw disk.
        let victim = PageId(2);
        assert_ne!(victim, tree.root_page());
        let mut page = vec![0u8; disk.page_size()];
        disk.read_page(victim, &mut page).unwrap();
        page[40] ^= 0xFF;
        disk.write_page(victim, &page).unwrap();

        let report = tree.check();
        assert!(!report.is_clean());
        assert!(
            report.corrupt.iter().any(|i| i.page == victim),
            "corrupted page not flagged: {report}"
        );
    }

    #[test]
    fn deletion_stranded_pages_show_as_unreachable() {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk.clone() as Arc<dyn Disk>, 64));
        let mut tree = RTree::<2>::create(pool.clone(), NodeCapacity::new(4).unwrap()).unwrap();
        let items = squares(64);
        for e in &items {
            tree.insert(e.rect, e.payload).unwrap();
        }
        for e in items.iter().take(48) {
            tree.delete(&e.rect, e.payload).unwrap();
        }
        // With the live tree the free list accounts for released pages.
        let report = tree.check();
        assert!(report.is_clean(), "{report}");
        assert!(report.unreachable.is_empty());
        let freed = tree.free.len();

        // Reopened, the free list is gone: the same pages surface as
        // unreachable (leaked but harmless), and the tree is still clean.
        tree.persist().unwrap();
        let pool2 = Arc::new(BufferPool::new(disk as Arc<dyn Disk>, 64));
        let reopened = RTree::<2>::open(pool2).unwrap();
        let report = reopened.check();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.unreachable.len(), freed);
    }
}
