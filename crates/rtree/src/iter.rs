//! Streaming region queries.
//!
//! [`RTree::iter_region`] yields matches lazily, one at a time, instead
//! of materializing a `Vec` — the right shape when a query's result set
//! is large (a 9% region query on the paper's 300k set returns ~27,000
//! rectangles) or when the consumer may stop early.

use geom::Rect;
use storage::PageId;

use crate::{RTree, Result};

/// Lazy iterator over `(rect, data-id)` pairs intersecting a query
/// region. Node pages are fetched through the buffer pool exactly when
/// the traversal reaches them, so early termination also saves I/O.
///
/// Nodes are read through zero-copy views; the only buffer is one
/// reusable `Vec` of matched leaf entries, cleared (not reallocated) per
/// leaf, so a long stream settles into steady state with no per-node
/// allocation.
pub struct RegionIter<'a, const D: usize> {
    tree: &'a RTree<D>,
    query: Rect<D>,
    /// Internal pages still to visit.
    stack: Vec<PageId>,
    /// Matches from the leaf currently being drained (reused buffer).
    matched: Vec<(Rect<D>, u64)>,
    /// Next position in `matched`.
    pos: usize,
    /// Set once an I/O error has been yielded; the iterator then fuses.
    failed: bool,
}

impl<'a, const D: usize> RegionIter<'a, D> {
    pub(crate) fn new(tree: &'a RTree<D>, query: Rect<D>) -> Self {
        Self {
            tree,
            query,
            stack: vec![tree.root_page()],
            matched: Vec::new(),
            pos: 0,
            failed: false,
        }
    }
}

impl<const D: usize> Iterator for RegionIter<'_, D> {
    type Item = Result<(Rect<D>, u64)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            // Drain the current leaf's matches first.
            if self.pos < self.matched.len() {
                let hit = self.matched[self.pos];
                self.pos += 1;
                return Some(Ok(hit));
            }
            // Descend to the next matching leaf.
            let page = self.stack.pop()?;
            self.matched.clear();
            self.pos = 0;
            let query = self.query;
            let stack = &mut self.stack;
            let matched = &mut self.matched;
            let visited = self.tree.with_view(page, |node| {
                if node.is_leaf() {
                    for i in 0..node.len() {
                        let rect = node.rect(i);
                        if rect.intersects(&query) {
                            matched.push((rect, node.payload(i)));
                        }
                    }
                } else {
                    for i in 0..node.len() {
                        if node.rect(i).intersects(&query) {
                            stack.push(node.child_page(i));
                        }
                    }
                }
            });
            if let Err(e) = visited {
                self.failed = true;
                return Some(Err(e));
            }
        }
    }
}

impl<const D: usize> std::iter::FusedIterator for RegionIter<'_, D> {}

impl<const D: usize> RTree<D> {
    /// Stream the entries intersecting `query` without materializing the
    /// result set.
    pub fn iter_region(&self, query: &Rect<D>) -> RegionIter<'_, D> {
        RegionIter::new(self, *query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BulkLoader, Entry, NodeCapacity};
    use std::sync::Arc;
    use storage::{BufferPool, MemDisk};

    fn sample_tree(n: usize) -> RTree<2> {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 256));
        let entries: Vec<Entry<2>> = (0..n)
            .map(|i| {
                let x = ((i * 193) % 997) as f64 / 997.0;
                let y = ((i * 389) % 991) as f64 / 991.0;
                Entry::data(Rect::new([x, y], [x, y]), i as u64)
            })
            .collect();
        BulkLoader::new(NodeCapacity::new(16).unwrap())
            .load(pool, entries, &mut |es: &mut Vec<Entry<2>>, _| {
                es.sort_by(|a, b| a.rect.cmp_center(&b.rect, 0))
            })
            .unwrap()
    }

    #[test]
    fn streams_same_results_as_materialized() {
        let tree = sample_tree(2000);
        let q = Rect::new([0.2, 0.2], [0.6, 0.5]);
        let mut streamed: Vec<u64> = tree.iter_region(&q).map(|r| r.unwrap().1).collect();
        let mut materialized: Vec<u64> = tree
            .query_region(&q)
            .unwrap()
            .into_iter()
            .map(|(_, id)| id)
            .collect();
        streamed.sort_unstable();
        materialized.sort_unstable();
        assert_eq!(streamed, materialized);
        assert!(!streamed.is_empty());
    }

    #[test]
    fn early_termination_reads_fewer_pages() {
        let tree = sample_tree(5000);
        let q = Rect::unit();
        let pool = tree.pool();

        pool.set_capacity(1).unwrap();
        pool.reset_stats();
        let first_five: Vec<_> = tree.iter_region(&q).take(5).collect();
        assert_eq!(first_five.len(), 5);
        let early = pool.stats().misses;

        pool.set_capacity(1).unwrap();
        pool.reset_stats();
        let all: Vec<_> = tree.iter_region(&q).collect();
        assert_eq!(all.len(), 5000);
        let full = pool.stats().misses;

        assert!(
            early < full / 10,
            "early stop should read far fewer pages ({early} vs {full})"
        );
    }

    #[test]
    fn empty_query_yields_nothing() {
        let tree = sample_tree(100);
        let q = Rect::new([2.0, 2.0], [3.0, 3.0]);
        assert_eq!(tree.iter_region(&q).count(), 0);
    }

    #[test]
    fn iterator_is_fused() {
        let tree = sample_tree(50);
        let mut it = tree.iter_region(&Rect::unit());
        while it.next().is_some() {}
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }
}
