//! Per-level tree statistics: the paper's secondary comparison metric.
//!
//! §3: "Our secondary comparison metric is the sum of the area and
//! perimeter of the MBRs of the R-tree nodes. […] we present area and
//! perimeter metrics for both the whole tree (summed over all nodes at
//! all levels) and also only for the leaf level."

use crate::{RTree, Result};

/// Aggregates for one tree level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelSummary {
    /// Height above the leaves (0 = leaf level).
    pub level: u32,
    /// Number of nodes at this level.
    pub nodes: u64,
    /// Total entries stored across the level's nodes.
    pub entries: u64,
    /// Sum of node-MBR areas.
    pub area_sum: f64,
    /// Sum of node-MBR perimeters.
    pub perimeter_sum: f64,
}

/// Whole-tree statistics, one [`LevelSummary`] per level plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSummary {
    /// Per-level aggregates, leaf level first.
    pub levels: Vec<LevelSummary>,
}

impl TreeSummary {
    /// Sum of leaf-node MBR areas (the paper's "leaf area").
    pub fn leaf_area(&self) -> f64 {
        self.levels.first().map_or(0.0, |l| l.area_sum)
    }

    /// Sum of MBR areas over all nodes at all levels ("total area").
    pub fn total_area(&self) -> f64 {
        self.levels.iter().map(|l| l.area_sum).sum()
    }

    /// Sum of leaf-node MBR perimeters ("leaf perimeter").
    pub fn leaf_perimeter(&self) -> f64 {
        self.levels.first().map_or(0.0, |l| l.perimeter_sum)
    }

    /// Sum of MBR perimeters over all nodes ("total perimeter").
    pub fn total_perimeter(&self) -> f64 {
        self.levels.iter().map(|l| l.perimeter_sum).sum()
    }

    /// Total node pages, the quantity buffered by the pool. Table 1 of
    /// the paper reports buffer size as a percentage of this.
    pub fn total_nodes(&self) -> u64 {
        self.levels.iter().map(|l| l.nodes).sum()
    }

    /// Mean fill factor over all nodes, as a fraction of `capacity`.
    /// Packed trees sit near 1.0; Guttman-built trees near 0.55–0.7.
    pub fn utilization(&self, capacity: usize) -> f64 {
        let entries: u64 = self.levels.iter().map(|l| l.entries).sum();
        let slots = self.total_nodes() * capacity as u64;
        if slots == 0 {
            0.0
        } else {
            entries as f64 / slots as f64
        }
    }
}

impl<const D: usize> RTree<D> {
    /// Sum of pairwise MBR-intersection areas among the nodes of one
    /// level — the *overlap* metric of the R*-tree line of work. Zero
    /// for a perfect tiling (which STR approaches on uniform data);
    /// every unit of overlap is space where a query must descend into
    /// more than one subtree. O(m²) in the node count of the level.
    pub fn level_overlap(&self, level: u32) -> Result<f64> {
        let mbrs = self.level_mbrs(level)?;
        let mut total = 0.0;
        for i in 0..mbrs.len() {
            for j in (i + 1)..mbrs.len() {
                if let Some(x) = mbrs[i].intersection(&mbrs[j]) {
                    total += x.area();
                }
            }
        }
        Ok(total)
    }

    /// Compute per-level node counts and area/perimeter sums.
    pub fn summary(&self) -> Result<TreeSummary> {
        let mut levels: Vec<LevelSummary> = (0..self.height())
            .map(|level| LevelSummary {
                level,
                nodes: 0,
                entries: 0,
                area_sum: 0.0,
                perimeter_sum: 0.0,
            })
            .collect();
        self.visit_views(&mut |_, node| {
            let l = &mut levels[node.level() as usize];
            l.nodes += 1;
            l.entries += node.len() as u64;
            let mbr = node.mbr();
            l.area_sum += mbr.area();
            l.perimeter_sum += mbr.perimeter();
        })?;
        Ok(TreeSummary { levels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BulkLoader, Entry, NodeCapacity};
    use geom::Rect;
    use std::sync::Arc;
    use storage::{BufferPool, MemDisk};

    fn packed_grid(n: usize, cap: usize) -> RTree<2> {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 256));
        let side = (n as f64).sqrt().ceil() as usize;
        let entries: Vec<Entry<2>> = (0..n)
            .map(|i| {
                let x = (i % side) as f64 / side as f64;
                let y = (i / side) as f64 / side as f64;
                Entry::data(Rect::new([x, y], [x, y]), i as u64)
            })
            .collect();
        BulkLoader::new(NodeCapacity::new(cap).unwrap())
            .load(pool, entries, &mut |es: &mut Vec<Entry<2>>, _| {
                es.sort_by(|a, b| {
                    a.rect
                        .cmp_center(&b.rect, 0)
                        .then(a.rect.cmp_center(&b.rect, 1))
                })
            })
            .unwrap()
    }

    #[test]
    fn summary_counts_levels() {
        let t = packed_grid(1000, 10);
        let s = t.summary().unwrap();
        assert_eq!(s.levels.len(), 3);
        assert_eq!(s.levels[0].nodes, 100);
        assert_eq!(s.levels[0].entries, 1000);
        assert_eq!(s.levels[1].nodes, 10);
        assert_eq!(s.levels[2].nodes, 1);
        assert_eq!(s.total_nodes(), 111);
    }

    #[test]
    fn packed_utilization_is_full() {
        let t = packed_grid(1000, 10);
        let s = t.summary().unwrap();
        assert!((s.utilization(10) - 1.0).abs() < 1e-9);
        // With a non-divisible count the utilization dips slightly.
        let t = packed_grid(1005, 10);
        let s = t.summary().unwrap();
        let u = s.utilization(10);
        assert!(u > 0.95 && u < 1.0, "utilization {u}");
    }

    #[test]
    fn overlap_separates_tilers_from_sorters() {
        // STR's tiling has near-zero leaf overlap on scattered points;
        // an arbitrary-order packing overlaps heavily.
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 256));
        let entries: Vec<Entry<2>> = (0..2_000)
            .map(|i| {
                let x = ((i * 193) % 997) as f64 / 997.0;
                let y = ((i * 389) % 991) as f64 / 991.0;
                Entry::data(Rect::new([x, y], [x, y]), i as u64)
            })
            .collect();
        let tiled = BulkLoader::new(NodeCapacity::new(20).unwrap())
            .load(pool, entries.clone(), &mut |es: &mut Vec<Entry<2>>, _| {
                // Row-major-ish tiling: coarse y band then x.
                es.sort_by(|a, b| {
                    let ba = (a.rect.lo(1) * 10.0) as i64;
                    let bb = (b.rect.lo(1) * 10.0) as i64;
                    ba.cmp(&bb).then(a.rect.cmp_center(&b.rect, 0))
                })
            })
            .unwrap();
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 256));
        let unordered = BulkLoader::new(NodeCapacity::new(20).unwrap())
            .load(pool, entries, &mut |_, _| {})
            .unwrap();
        let tiled_overlap = tiled.level_overlap(0).unwrap();
        let unordered_overlap = unordered.level_overlap(0).unwrap();
        assert!(
            tiled_overlap < 0.2 * unordered_overlap,
            "tiled {tiled_overlap} vs unordered {unordered_overlap}"
        );
    }

    #[test]
    fn leaf_metrics_are_prefix_of_totals() {
        let t = packed_grid(500, 10);
        let s = t.summary().unwrap();
        assert!(s.leaf_area() <= s.total_area());
        assert!(s.leaf_perimeter() <= s.total_perimeter());
        assert!(s.leaf_area() > 0.0);
    }

    #[test]
    fn point_data_leaf_area_covers_space_once() {
        // Uniformly scattered points packed by x-sort produce vertical
        // slices that together cover ~the unit square once, so the leaf
        // area sum is close to 1 (cf. Table 4's 0.97 for point data).
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 256));
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = move || {
            // xorshift64*: plenty for scattering test points.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let entries: Vec<Entry<2>> = (0..10_000)
            .map(|i| {
                let (x, y) = (next(), next());
                Entry::data(Rect::new([x, y], [x, y]), i as u64)
            })
            .collect();
        let t = BulkLoader::new(NodeCapacity::new(100).unwrap())
            .load(pool, entries, &mut |es: &mut Vec<Entry<2>>, _| {
                es.sort_by(|a, b| a.rect.cmp_center(&b.rect, 0))
            })
            .unwrap();
        let s = t.summary().unwrap();
        assert!(
            s.leaf_area() > 0.8 && s.leaf_area() < 1.2,
            "leaf area {} should be near 1",
            s.leaf_area()
        );
    }
}
