//! R*-tree insertion (Beckmann, Kriegel, Schneider, Seeger; SIGMOD 1990).
//!
//! The STR paper cites the R*-tree as one of the improved dynamic
//! algorithms that "still are not competitive with regard to query time
//! when compared to loading algorithms" (§1). This module implements the
//! full R* insertion path so that claim is measurable here:
//!
//! * **ChooseSubtree**: at the level just above the leaves, pick the
//!   child whose *overlap* with its siblings grows least (ties: least
//!   area enlargement, then least area); higher up, least area
//!   enlargement.
//! * **Forced reinsertion**: on the first overflow at each level per
//!   insertion, evict the 30% of entries whose centers lie farthest from
//!   the node's center and reinsert them from the top — R*'s cheap local
//!   rebuild that gives most of its quality edge.
//! * **Topological split** (the [`SplitPolicy::RStarAxis`] split) when
//!   reinsertion has already happened at that level.

use geom::Rect;
use storage::PageId;

use crate::{Entry, Node, RTree, Result, SplitPolicy};

/// Fraction of a node forcibly reinserted on first overflow (the R*
/// paper's recommended 30%).
const REINSERT_FRACTION: f64 = 0.3;

impl<const D: usize> RTree<D> {
    /// Insert with the R* algorithm (ChooseSubtree, forced reinsertion,
    /// topological split). The tree's configured
    /// [`split_policy`](Self::split_policy) is not consulted; R* always
    /// uses its own split.
    pub fn insert_rstar(&mut self, rect: Rect<D>, data: u64) -> Result<()> {
        // R* writes nodes directly as it restructures, bypassing the
        // staged-commit path the WAL logs — refuse rather than corrupt
        // the crash contract.
        if self.cow {
            return Err(crate::RTreeError::Invalid(
                "insert_rstar bypasses staged commits and is not supported \
                 on a WAL-attached tree; use insert"
                    .into(),
            ));
        }
        // One "first overflow" budget per level for the whole insertion,
        // shared by the reinsertions it spawns (the R* rule).
        let mut reinserted_levels: Vec<bool> = vec![false; self.height as usize + 1];
        let mut pending: Vec<(u32, Entry<D>)> = vec![(0, Entry::data(rect, data))];
        while let Some((level, entry)) = pending.pop() {
            // The tree may have grown since the entry was queued; levels
            // remain valid because growth only adds levels above.
            if reinserted_levels.len() < self.height as usize + 1 {
                reinserted_levels.resize(self.height as usize + 1, false);
            }
            let root = self.root;
            let split =
                self.rstar_insert_rec(root, entry, level, &mut reinserted_levels, &mut pending)?;
            if let Some(sibling) = split {
                self.grow_root(sibling)?;
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Make a new root holding the old root and `sibling`.
    fn grow_root(&mut self, sibling: Entry<D>) -> Result<()> {
        let old_root = self.root;
        let old_mbr = self.read_node(old_root)?.mbr();
        let new_root_page = self.alloc_page()?;
        let new_root = Node {
            level: self.height,
            entries: vec![Entry::child(old_mbr, old_root), sibling],
        };
        self.write_node(new_root_page, &new_root)?;
        self.root = new_root_page;
        self.height += 1;
        Ok(())
    }

    /// Recursive insert; returns the sibling entry if this node split.
    fn rstar_insert_rec(
        &mut self,
        page: PageId,
        entry: Entry<D>,
        target_level: u32,
        reinserted: &mut [bool],
        pending: &mut Vec<(u32, Entry<D>)>,
    ) -> Result<Option<Entry<D>>> {
        let mut node = self.read_node(page)?;
        if node.level == target_level {
            node.entries.push(entry);
            return self.finish_node(page, node, reinserted, pending);
        }

        debug_assert!(node.level > target_level);
        let idx = choose_subtree_rstar(&node, &entry.rect, node.level == target_level + 1);
        let child_page = node.entries[idx].child_page();
        let split = self.rstar_insert_rec(child_page, entry, target_level, reinserted, pending)?;

        // Refresh the child's recorded MBR (it may have grown, or shrunk
        // after a forced reinsert).
        node.entries[idx].rect = self.read_node(child_page)?.mbr();
        if let Some(sibling) = split {
            node.entries.push(sibling);
        }
        self.finish_node(page, node, reinserted, pending)
    }

    /// Write `node` back, handling overflow via forced reinsert or
    /// split.
    fn finish_node(
        &mut self,
        page: PageId,
        mut node: Node<D>,
        reinserted: &mut [bool],
        pending: &mut Vec<(u32, Entry<D>)>,
    ) -> Result<Option<Entry<D>>> {
        if node.len() <= self.capacity().max() {
            self.write_node(page, &node)?;
            return Ok(None);
        }

        let level = node.level as usize;
        let is_root = page == self.root;
        if !is_root && !reinserted[level] {
            reinserted[level] = true;
            // Forced reinsert: drop the p entries with centers farthest
            // from the node's center.
            let center = node.mbr().center();
            let p = (((node.len() as f64) * REINSERT_FRACTION).ceil() as usize)
                .clamp(1, node.len() - self.capacity().min());
            node.entries.sort_by(|a, b| {
                // Farthest first.
                geom::total_cmp_f64(
                    b.rect.center().dist2(&center),
                    a.rect.center().dist2(&center),
                )
            });
            let evicted: Vec<Entry<D>> = node.entries.drain(..p).collect();
            self.write_node(page, &node)?;
            for e in evicted {
                pending.push((node.level, e));
            }
            return Ok(None);
        }

        // Split.
        let level = node.level;
        let (left, right) = SplitPolicy::RStarAxis.split(node.entries, self.capacity());
        let right_mbr = Rect::union_all(right.iter().map(|e| &e.rect));
        self.write_node(
            page,
            &Node {
                level,
                entries: left,
            },
        )?;
        let new_page = self.alloc_page()?;
        self.write_node(
            new_page,
            &Node {
                level,
                entries: right,
            },
        )?;
        Ok(Some(Entry::child(right_mbr, new_page)))
    }
}

/// R* ChooseSubtree: overlap-based at the level above the leaves, area
/// based higher up.
fn choose_subtree_rstar<const D: usize>(
    node: &Node<D>,
    rect: &Rect<D>,
    children_are_leaves: bool,
) -> usize {
    debug_assert!(!node.is_empty());
    if !children_are_leaves {
        // Least area enlargement, ties by least area.
        let mut best = 0;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, e) in node.entries.iter().enumerate() {
            let enl = e.rect.enlargement(rect);
            let area = e.rect.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        return best;
    }

    // Leaf-parent level: least overlap enlargement.
    let mut best = 0;
    let mut best_overlap_delta = f64::INFINITY;
    let mut best_enl = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in node.entries.iter().enumerate() {
        let grown = e.rect.union(rect);
        let mut before = 0.0;
        let mut after = 0.0;
        for (j, other) in node.entries.iter().enumerate() {
            if i == j {
                continue;
            }
            before += e.rect.intersection(&other.rect).map_or(0.0, |r| r.area());
            after += grown.intersection(&other.rect).map_or(0.0, |r| r.area());
        }
        let overlap_delta = after - before;
        let enl = e.rect.enlargement(rect);
        let area = e.rect.area();
        let better = overlap_delta < best_overlap_delta
            || (overlap_delta == best_overlap_delta
                && (enl < best_enl || (enl == best_enl && area < best_area)));
        if better {
            best = i;
            best_overlap_delta = overlap_delta;
            best_enl = enl;
            best_area = area;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeCapacity;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use storage::{BufferPool, MemDisk};

    fn new_tree(cap: usize) -> RTree<2> {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 512));
        RTree::create(pool, NodeCapacity::new(cap).unwrap()).unwrap()
    }

    fn random_items(n: usize, seed: u64) -> Vec<(Rect<2>, u64)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..0.95);
                let y: f64 = rng.gen_range(0.0..0.95);
                let s: f64 = rng.gen_range(0.0..0.04);
                (Rect::new([x, y], [x + s, y + s]), i as u64)
            })
            .collect()
    }

    #[test]
    fn inserts_are_found() {
        let mut t = new_tree(8);
        let items = random_items(2_000, 1);
        for (r, id) in &items {
            t.insert_rstar(*r, *id).unwrap();
        }
        assert_eq!(t.len(), 2_000);
        t.validate(false).unwrap();
        for (r, id) in items.iter().take(100) {
            let hits = t.query_point(&r.center()).unwrap();
            assert!(hits.iter().any(|(_, i)| i == id), "lost {id}");
        }
    }

    #[test]
    fn region_queries_match_brute_force() {
        let mut t = new_tree(10);
        let items = random_items(1_000, 2);
        for (r, id) in &items {
            t.insert_rstar(*r, *id).unwrap();
        }
        let q = Rect::new([0.25, 0.25], [0.6, 0.55]);
        let mut expect: Vec<u64> = items
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|(_, id)| *id)
            .collect();
        let mut got: Vec<u64> = t
            .query_region(&q)
            .unwrap()
            .into_iter()
            .map(|(_, id)| id)
            .collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got);
    }

    #[test]
    fn produces_tighter_trees_than_linear_split() {
        // The R* pitch: better structure than Guttman's simpler
        // heuristics. Compare total leaf perimeter against linear-split
        // insertion of the same data.
        let items = random_items(3_000, 3);

        let mut rstar = new_tree(16);
        for (r, id) in &items {
            rstar.insert_rstar(*r, *id).unwrap();
        }
        let mut linear = new_tree(16);
        linear.set_split_policy(SplitPolicy::Linear);
        for (r, id) in &items {
            linear.insert(*r, *id).unwrap();
        }

        let perim =
            |t: &RTree<2>| -> f64 { t.level_mbrs(0).unwrap().iter().map(|r| r.perimeter()).sum() };
        let (pr, pl) = (perim(&rstar), perim(&linear));
        assert!(
            pr < pl,
            "R* leaf perimeter {pr} should beat linear split {pl}"
        );
    }

    #[test]
    fn mixed_with_deletes() {
        let mut t = new_tree(8);
        let items = random_items(800, 4);
        for (r, id) in &items {
            t.insert_rstar(*r, *id).unwrap();
        }
        for (r, id) in items.iter().step_by(3) {
            assert!(t.delete(r, *id).unwrap());
        }
        t.validate(false).unwrap();
        assert_eq!(t.len(), 800 - items.iter().step_by(3).count() as u64);
    }

    #[test]
    fn skewed_data_stays_valid() {
        // Clustered inserts exercise forced reinsertion heavily.
        let mut t = new_tree(6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for i in 0..1_500u64 {
            let cluster = (i % 3) as f64 * 0.3 + 0.1;
            let x = cluster + rng.gen_range(0.0..0.02);
            let y = cluster + rng.gen_range(0.0..0.02);
            t.insert_rstar(Rect::new([x, y], [x + 0.001, y + 0.001]), i)
                .unwrap();
        }
        assert_eq!(t.len(), 1_500);
        t.validate(false).unwrap();
    }
}
