//! Bulk insertion into an existing tree — packing meets dynamics.
//!
//! The paper's future work contemplates "dynamic R-tree variants based
//! on the STR packing algorithm". The standard realization is
//! small-tree-in-large-tree (STLT-style) bulk insertion: pack the new
//! batch into a subtree with the bulk loader, then graft that subtree's
//! root into the existing tree at the appropriate height with one
//! ordinary insertion — orders of magnitude cheaper than one-at-a-time
//! inserts, while keeping the batch itself perfectly packed.

use geom::Rect;

use crate::{Entry, Node, RTree, Result};

impl<const D: usize> RTree<D> {
    /// Insert a batch of items by packing them into a subtree (using
    /// `order` for the packing order at each level, as in
    /// [`BulkLoader::load`](crate::BulkLoader::load)) and grafting it
    /// into this tree.
    ///
    /// Falls back to ordinary insertion when the batch is small (fewer
    /// than one node's worth) or taller than the current tree.
    pub fn bulk_insert(
        &mut self,
        items: Vec<(Rect<D>, u64)>,
        order: &mut dyn FnMut(&mut Vec<Entry<D>>, u32),
    ) -> Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        let n = self.capacity().max();
        // A WAL-attached tree logs every page image at commit; the
        // packed-subtree path writes nodes outside any staged commit, so
        // a crash could lose them behind a committed graft. Take the
        // fully-logged one-at-a-time path instead.
        if self.cow || items.len() < n {
            for (rect, id) in items {
                self.insert(rect, id)?;
            }
            return Ok(());
        }

        // Build the packed subtree with the same page allocator.
        let count = items.len() as u64;
        let mut entries: Vec<Entry<D>> = items
            .into_iter()
            .map(|(rect, id)| Entry::data(rect, id))
            .collect();
        let mut level: u32 = 0;
        loop {
            order(&mut entries, level);
            let mut next: Vec<Entry<D>> = Vec::with_capacity(entries.len() / n + 1);
            for group in entries.chunks(n) {
                let page = self.alloc_page()?;
                self.write_node(
                    page,
                    &Node {
                        level,
                        entries: group.to_vec(),
                    },
                )?;
                next.push(Entry::child(
                    Rect::union_all(group.iter().map(|e| &e.rect)),
                    page,
                ));
            }
            if next.len() == 1 {
                break self.graft(next.remove(0), level + 1, count);
            }
            entries = next;
            level += 1;
        }
    }

    /// Graft a packed subtree (root entry at `subtree_height`) into this
    /// tree: insert the entry at the level where it fits, or grow this
    /// tree from the subtree if the subtree is the taller one.
    fn graft(&mut self, subtree: Entry<D>, subtree_height: u32, count: u64) -> Result<()> {
        if subtree_height < self.height {
            // Normal case: insert the subtree's root entry at its level.
            self.insert_entry_at(subtree, subtree_height)?;
        } else if self.is_empty() {
            // Replace the empty tree entirely.
            self.free_page(self.root);
            self.root = subtree.child_page();
            self.height = subtree_height;
        } else {
            // The batch out-grew the tree: dissolve the subtree's top
            // levels until its entries fit below this tree's root.
            let mut pending = vec![(subtree_height, subtree)];
            while let Some((h, e)) = pending.pop() {
                if h < self.height {
                    self.insert_entry_at(e, h)?;
                } else {
                    let node = self.read_node(e.child_page())?;
                    self.free_page(e.child_page());
                    for child in node.entries {
                        pending.push((node.level, child));
                    }
                }
            }
        }
        self.len += count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeCapacity;
    use std::sync::Arc;
    use storage::{BufferPool, MemDisk};

    fn new_tree(cap: usize) -> RTree<2> {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 512));
        RTree::create(pool, NodeCapacity::new(cap).unwrap()).unwrap()
    }

    fn grid(n: usize, offset: f64) -> Vec<(Rect<2>, u64)> {
        (0..n)
            .map(|i| {
                let x = (i % 50) as f64 / 50.0 * 0.4 + offset;
                let y = (i / 50) as f64 / 50.0 * 0.4 + offset;
                (Rect::new([x, y], [x, y]), (offset * 1e6) as u64 + i as u64)
            })
            .collect()
    }

    #[allow(clippy::ptr_arg)] // must match the &mut Vec callback signature
    fn sort_x(entries: &mut Vec<Entry<2>>, _level: u32) {
        entries.sort_by(|a, b| a.rect.cmp_center(&b.rect, 0));
    }

    #[test]
    fn bulk_insert_into_populated_tree() {
        let mut t = new_tree(10);
        for (r, id) in grid(500, 0.0) {
            t.insert(r, id).unwrap();
        }
        let batch = grid(1_000, 0.5);
        t.bulk_insert(batch.clone(), &mut sort_x).unwrap();
        assert_eq!(t.len(), 1_500);
        t.validate(false).unwrap();
        // Batch is queryable.
        let hits = t
            .query_region(&Rect::new([0.5, 0.5], [0.95, 0.95]))
            .unwrap();
        assert!(hits.len() >= batch.len());
    }

    #[test]
    fn bulk_insert_into_empty_tree() {
        let mut t = new_tree(10);
        t.bulk_insert(grid(700, 0.1), &mut sort_x).unwrap();
        assert_eq!(t.len(), 700);
        t.validate(false).unwrap();
    }

    #[test]
    fn small_batch_falls_back_to_inserts() {
        let mut t = new_tree(10);
        t.bulk_insert(grid(5, 0.2), &mut sort_x).unwrap();
        assert_eq!(t.len(), 5);
        t.validate(true).unwrap();
    }

    #[test]
    fn batch_taller_than_tree_dissolves() {
        // A tree with a handful of items receives a batch whose packed
        // subtree is taller than the tree itself.
        let mut t = new_tree(4);
        for (r, id) in grid(3, 0.0) {
            t.insert(r, id).unwrap();
        }
        assert_eq!(t.height(), 1);
        t.bulk_insert(grid(300, 0.5), &mut sort_x).unwrap();
        assert_eq!(t.len(), 303);
        t.validate(false).unwrap();
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut t = new_tree(8);
        t.bulk_insert(Vec::new(), &mut sort_x).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn repeated_batches_agree_with_brute_force() {
        let mut t = new_tree(16);
        let mut all: Vec<(Rect<2>, u64)> = Vec::new();
        for (i, off) in [0.0, 0.25, 0.5].iter().enumerate() {
            let batch: Vec<(Rect<2>, u64)> = grid(400, *off)
                .into_iter()
                .map(|(r, id)| (r, id + i as u64 * 1_000_000))
                .collect();
            all.extend(batch.clone());
            t.bulk_insert(batch, &mut sort_x).unwrap();
        }
        t.validate(false).unwrap();
        let q = Rect::new([0.2, 0.2], [0.6, 0.6]);
        let mut expect: Vec<u64> = all
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|(_, id)| *id)
            .collect();
        let mut got: Vec<u64> = t
            .query_region(&q)
            .unwrap()
            .into_iter()
            .map(|(_, id)| id)
            .collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got);
    }
}
