//! Guttman dynamic insertion.
//!
//! The one-at-a-time loading the paper's introduction criticizes: high
//! load time, sub-optimal space utilization, and a tree structure that
//! needs more node retrievals per query than a packed tree. Implemented
//! faithfully so the examples and benches can measure exactly that
//! comparison.

use geom::Rect;
use obs::flight::EventKind;
use obs::LazyCounter;
use storage::PageId;

use crate::tree::Staging;
use crate::{Entry, Node, RTree, Result};

/// Node splits staged across every tree in the process (root splits
/// included — they stage an ordinary split first).
static SPLITS: LazyCounter = LazyCounter::new("rtree.splits");

impl<const D: usize> RTree<D> {
    /// Insert a data object with bounding rectangle `rect` and identifier
    /// `data`.
    ///
    /// Runs as a staged mutation: every node write is computed into an
    /// overlay first, so an I/O error during the descent or split phase
    /// leaves the tree exactly as it was (`validate` still passes). Only
    /// a failure while committing the computed writes can poison the
    /// tree (see [`crate::RTreeError::Poisoned`]).
    pub fn insert(&mut self, rect: Rect<D>, data: u64) -> Result<()> {
        self.check_poisoned()?;
        let mut st = self.begin_staging();
        st.len += 1;
        if let Err(e) = self.staged_insert_entry(&mut st, Entry::data(rect, data), 0) {
            self.abandon_staging(st);
            return Err(e);
        }
        self.commit_staging(st)
    }

    /// Insert `entry` into a node at `level` (0 = leaf), as one staged
    /// mutation that does not change the recorded object count (the
    /// subtree-grafting path counts its entries itself). Deletion uses
    /// non-zero levels to reinsert orphaned subtrees at their original
    /// height (Guttman's CondenseTree step).
    pub(crate) fn insert_entry_at(&mut self, entry: Entry<D>, level: u32) -> Result<()> {
        self.check_poisoned()?;
        let mut st = self.begin_staging();
        if let Err(e) = self.staged_insert_entry(&mut st, entry, level) {
            self.abandon_staging(st);
            return Err(e);
        }
        self.commit_staging(st)
    }

    /// The Guttman insertion algorithm, expressed against a staging
    /// overlay: ChooseSubtree descent, split on overflow, AdjustTree walk
    /// back up, root split. Nothing outside `st` is modified (page
    /// allocation aside, which `st` tracks for rollback).
    pub(crate) fn staged_insert_entry(
        &mut self,
        st: &mut Staging<D>,
        entry: Entry<D>,
        level: u32,
    ) -> Result<()> {
        debug_assert!(level < st.height, "cannot insert above the root");

        // ChooseLeaf / ChooseSubtree: descend to `level`, remembering the
        // path as (page, index-of-chosen-child).
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut page = st.root;
        let mut node = self.staged_read(st, page)?;
        while node.level > level {
            let idx = choose_subtree(&node, &entry.rect);
            path.push((page, idx));
            page = node.entries[idx].child_page();
            node = self.staged_read(st, page)?;
        }

        // Add the entry; split if the node overflows.
        node.entries.push(entry);
        let mut split_off: Option<Entry<D>> = None; // entry for the new sibling
        if node.len() > self.capacity().max() {
            split_off = Some(self.staged_split(st, page, node)?);
        } else {
            st.write(page, node);
        }

        // AdjustTree: walk back up, growing MBRs and propagating splits.
        while let Some((parent_page, child_idx)) = path.pop() {
            let mut parent = self.staged_read(st, parent_page)?;
            // Tighten the chosen child's recorded MBR. The child may have
            // been rewritten by a split, so recompute from its node.
            let child_page = parent.entries[child_idx].child_page();
            let child_mbr = self.staged_read(st, child_page)?.mbr();
            parent.entries[child_idx].rect = child_mbr;

            if let Some(new_sibling) = split_off.take() {
                parent.entries.push(new_sibling);
            }
            if parent.len() > self.capacity().max() {
                split_off = Some(self.staged_split(st, parent_page, parent)?);
            } else {
                st.write(parent_page, parent);
            }
        }

        // Root split: grow the tree by one level.
        if let Some(new_sibling) = split_off {
            let old_root = st.root;
            let old_root_mbr = self.staged_read(st, old_root)?.mbr();
            let new_root_page = self.staged_alloc(st)?;
            let new_root = Node {
                level: st.height,
                entries: vec![Entry::child(old_root_mbr, old_root), new_sibling],
            };
            st.write(new_root_page, new_root);
            st.root = new_root_page;
            st.height += 1;
        }
        Ok(())
    }

    /// Split the overflowing `node` (still addressed by `page`): keep one
    /// group on `page`, stage the other on a fresh page, and return the
    /// parent entry for the new page.
    fn staged_split(
        &mut self,
        st: &mut Staging<D>,
        page: PageId,
        node: Node<D>,
    ) -> Result<Entry<D>> {
        let level = node.level;
        let (left, right) = self.split_policy().split(node.entries, self.capacity());
        let right_mbr = Rect::union_all(right.iter().map(|e| &e.rect));
        st.write(
            page,
            Node {
                level,
                entries: left,
            },
        );
        let new_page = self.staged_alloc(st)?;
        st.write(
            new_page,
            Node {
                level,
                entries: right,
            },
        );
        SPLITS.inc();
        obs::flight::record(EventKind::Split, page.index(), new_page.index());
        Ok(Entry::child(right_mbr, new_page))
    }
}

/// Guttman's ChooseLeaf criterion: the child needing the least area
/// enlargement; ties broken by the smaller area.
fn choose_subtree<const D: usize>(node: &Node<D>, rect: &Rect<D>) -> usize {
    debug_assert!(!node.is_leaf());
    debug_assert!(!node.is_empty());
    let mut best = 0usize;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in node.entries.iter().enumerate() {
        let enlargement = e.rect.enlargement(rect);
        let area = e.rect.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeCapacity, SplitPolicy};
    use geom::Point;
    use std::sync::Arc;
    use storage::{BufferPool, MemDisk};

    fn new_tree(cap: usize, policy: SplitPolicy) -> RTree<2> {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk, 256));
        let mut t = RTree::create(pool, NodeCapacity::new(cap).unwrap()).unwrap();
        t.set_split_policy(policy);
        t
    }

    fn square(x: f64, y: f64, s: f64) -> Rect<2> {
        Rect::new([x, y], [x + s, y + s])
    }

    #[test]
    fn insert_and_find_one() {
        let mut t = new_tree(4, SplitPolicy::Quadratic);
        t.insert(square(0.1, 0.1, 0.2), 7).unwrap();
        assert_eq!(t.len(), 1);
        let hits = t.query_region(&Rect::unit()).unwrap();
        assert_eq!(hits, vec![(square(0.1, 0.1, 0.2), 7)]);
        t.validate(true).unwrap();
    }

    #[test]
    fn root_split_grows_height() {
        let mut t = new_tree(4, SplitPolicy::Quadratic);
        for i in 0..5 {
            t.insert(square(i as f64, 0.0, 0.5), i as u64).unwrap();
        }
        assert_eq!(t.height(), 2, "5 entries at capacity 4 must split");
        assert_eq!(t.len(), 5);
        t.validate(true).unwrap();
    }

    fn insert_many(policy: SplitPolicy, n: u64, cap: usize) -> RTree<2> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut t = new_tree(cap, policy);
        for i in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            let s: f64 = rng.gen_range(0.0..0.05);
            t.insert(square(x, y, s).clamp_to(&Rect::unit()), i)
                .unwrap();
        }
        t
    }

    #[test]
    fn thousand_inserts_all_policies() {
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStarAxis,
        ] {
            let t = insert_many(policy, 1000, 8);
            assert_eq!(t.len(), 1000);
            t.validate(true)
                .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
            // Every object findable by a point query at its center.
            let entries = t.all_entries().unwrap();
            assert_eq!(entries.len(), 1000);
            for (rect, id) in entries.iter().take(50) {
                let hits = t.query_point(&rect.center()).unwrap();
                assert!(
                    hits.iter().any(|(_, i)| i == id),
                    "{policy:?}: object {id} lost"
                );
            }
        }
    }

    #[test]
    fn region_query_matches_linear_scan() {
        let t = insert_many(SplitPolicy::Quadratic, 500, 10);
        let all = t.all_entries().unwrap();
        let q = Rect::new([0.2, 0.3], [0.5, 0.6]);
        let mut expect: Vec<u64> = all
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|(_, id)| *id)
            .collect();
        let mut got: Vec<u64> = t
            .query_region(&q)
            .unwrap()
            .iter()
            .map(|(_, id)| *id)
            .collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got);
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let t = insert_many(SplitPolicy::Quadratic, 300, 10);
        let all = t.all_entries().unwrap();
        let q = Point::new([0.4, 0.7]);
        let mut by_dist: Vec<(f64, u64)> =
            all.iter().map(|(r, id)| (r.min_dist2(&q), *id)).collect();
        by_dist.sort_by(|a, b| geom::total_cmp_f64(a.0, b.0));
        let got = t.nearest(&q, 10).unwrap();
        assert_eq!(got.len(), 10);
        // Distances must match the scan (ids may tie at equal distance).
        for (i, (r, _, d)) in got.iter().enumerate() {
            assert!((d * d - by_dist[i].0).abs() < 1e-9, "rank {i} distance");
            assert!((r.min_dist2(&q).sqrt() - d).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_rectangles_coexist() {
        let mut t = new_tree(4, SplitPolicy::Quadratic);
        for i in 0..20 {
            t.insert(square(0.5, 0.5, 0.1), i).unwrap();
        }
        assert_eq!(t.len(), 20);
        let hits = t.query_point(&Point::new([0.55, 0.55])).unwrap();
        assert_eq!(hits.len(), 20);
        t.validate(true).unwrap();
    }

    #[test]
    fn persist_round_trip_after_inserts() {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk.clone() as Arc<dyn storage::Disk>, 64));
        let mut t = RTree::create(pool, NodeCapacity::new(4).unwrap()).unwrap();
        for i in 0..50 {
            t.insert(square(i as f64 * 0.01, 0.0, 0.02), i).unwrap();
        }
        t.persist().unwrap();

        let pool2 = Arc::new(BufferPool::new(disk as Arc<dyn storage::Disk>, 64));
        let t2 = RTree::<2>::open(pool2).unwrap();
        assert_eq!(t2.len(), 50);
        assert_eq!(t2.height(), t.height());
        t2.validate(true).unwrap();
        let hits = t2.query_point(&Point::new([0.25, 0.01])).unwrap();
        assert!(!hits.is_empty());
    }
}
