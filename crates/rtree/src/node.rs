//! In-memory node representation.

use geom::Rect;
use storage::PageId;

/// One `(rectangle, pointer)` pair — the paper's §2.1 entry: "Each entry
/// consists of a rectangle R and a pointer P."
///
/// At the leaf level the payload is an opaque data-object identifier; at
/// internal levels it is the child's page number (the bulk loader's
/// "(MBR, page-number)" pairs). Both are 64-bit, so one layout serves both
/// levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry<const D: usize> {
    /// MBR of the data object (leaf) or of the entire child subtree
    /// (internal).
    pub rect: Rect<D>,
    /// Data id (leaf) or child page number (internal).
    pub payload: u64,
}

impl<const D: usize> Entry<D> {
    /// Leaf entry for a data object.
    pub fn data(rect: Rect<D>, id: u64) -> Self {
        Self { rect, payload: id }
    }

    /// Internal entry pointing at a child page.
    pub fn child(rect: Rect<D>, page: PageId) -> Self {
        Self {
            rect,
            payload: page.index(),
        }
    }

    /// Interpret the payload as a child page (valid on internal nodes).
    pub fn child_page(&self) -> PageId {
        PageId(self.payload)
    }
}

/// An R-tree node: a level tag and up to `capacity.max()` entries.
///
/// Level 0 is the leaf level; the root carries the largest level. (The
/// paper's Figure 1 numbers levels downward from the root instead — only
/// the direction differs, and counting up from the leaves keeps levels
/// stable as the tree grows.)
#[derive(Debug, Clone, PartialEq)]
pub struct Node<const D: usize> {
    /// Height above the leaf level (leaves are 0).
    pub level: u32,
    /// The stored entries.
    pub entries: Vec<Entry<D>>,
}

impl<const D: usize> Node<D> {
    /// An empty node at `level`.
    pub fn new(level: u32) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// A leaf node with the given entries.
    pub fn leaf(entries: Vec<Entry<D>>) -> Self {
        Self { level: 0, entries }
    }

    /// Whether this node is at the leaf level.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the node holds no entries (legal only for an empty tree's
    /// root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Minimum bounding rectangle of all entries.
    pub fn mbr(&self) -> Rect<D> {
        Rect::union_all(self.entries.iter().map(|e| &e.rect))
    }

    /// Entries whose rectangle intersects `query` (the per-node step of
    /// the paper's recursive search procedure).
    pub fn matching<'a>(&'a self, query: &'a Rect<D>) -> impl Iterator<Item = &'a Entry<D>> + 'a {
        self.entries
            .iter()
            .filter(move |e| e.rect.intersects(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(min: [f64; 2], max: [f64; 2]) -> Rect<2> {
        Rect::new(min, max)
    }

    #[test]
    fn entry_payload_views() {
        let e = Entry::child(r([0.0, 0.0], [1.0, 1.0]), PageId(7));
        assert_eq!(e.child_page(), PageId(7));
        let d = Entry::data(r([0.0, 0.0], [1.0, 1.0]), 99);
        assert_eq!(d.payload, 99);
    }

    #[test]
    fn node_mbr_is_union() {
        let mut n = Node::new(0);
        assert!(n.is_leaf());
        assert!(n.mbr().is_empty());
        n.entries.push(Entry::data(r([0.0, 0.0], [1.0, 1.0]), 0));
        n.entries.push(Entry::data(r([2.0, 2.0], [3.0, 4.0]), 1));
        assert_eq!(n.mbr(), r([0.0, 0.0], [3.0, 4.0]));
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn matching_filters_by_intersection() {
        let n = Node::leaf(vec![
            Entry::data(r([0.0, 0.0], [1.0, 1.0]), 0),
            Entry::data(r([5.0, 5.0], [6.0, 6.0]), 1),
            Entry::data(r([0.5, 0.5], [5.5, 5.5]), 2),
        ]);
        let q = r([0.9, 0.9], [1.1, 1.1]);
        let hits: Vec<u64> = n.matching(&q).map(|e| e.payload).collect();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn levels() {
        let n = Node::<2>::new(3);
        assert!(!n.is_leaf());
        assert_eq!(n.level, 3);
    }
}
