//! A backend-neutral query interface over every index tier.
//!
//! The paper's measurements are all phrased as "run this query workload,
//! count the disk accesses" — they never care *which* physical layout
//! answers, only that the answers match and the cost is observable. This
//! module captures that contract as [`SpatialIndex`]: the paged
//! [`RTree`], the flat mmap tier, and the LSM memtable all implement it,
//! so the executor, the CLI, and the differential test suites run one
//! workload over any backend through `&dyn SpatialIndex<D>`.
//!
//! The trait is object-safe on purpose: the visitor takes `&mut dyn
//! FnMut`, and cost accounting is an `Option<BufferStats>` (backends
//! with no buffer pool — flat mmap, memtables — report `None` and the
//! executor records a zero delta, which is also the honest number: those
//! tiers perform no paged reads).

use geom::{Point, Rect};
use storage::BufferStats;

use crate::tree::RTree;
use crate::Result;

/// Structural facts about an index backend, for reporting and logging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Short backend name (`"paged"`, `"flat"`, `"memtable"`, `"lsm"`).
    pub backend: &'static str,
    /// Number of data items the index holds.
    pub len: u64,
    /// Height in levels (a memtable reports 1; an LSM tree reports the
    /// deepest component's height).
    pub levels: u32,
}

/// The query surface shared by every index tier.
///
/// Implementations must be [`Sync`]: the executor fans one `&dyn
/// SpatialIndex` across scoped worker threads.
pub trait SpatialIndex<const D: usize>: Sync {
    /// Visit every `(rectangle, item id)` whose rectangle intersects
    /// `query`. Visit order is backend-defined; differential tests
    /// normalize by id before comparing.
    fn for_each_intersecting(
        &self,
        query: &Rect<D>,
        visit: &mut dyn FnMut(Rect<D>, u64),
    ) -> Result<()>;

    /// Materialized form of [`for_each_intersecting`](Self::for_each_intersecting).
    fn query(&self, query: &Rect<D>) -> Result<Vec<(Rect<D>, u64)>> {
        let mut out = Vec::new();
        self.for_each_intersecting(query, &mut |rect, id| out.push((rect, id)))?;
        Ok(out)
    }

    /// All items whose rectangle contains `point`.
    fn query_point(&self, point: &Point<D>) -> Result<Vec<(Rect<D>, u64)>> {
        self.query(&Rect::from_point(*point))
    }

    /// Number of data items.
    fn len(&self) -> u64;

    /// Whether the index holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural summary.
    fn stats(&self) -> IndexStats;

    /// Cumulative buffer-pool counters, for backends whose reads go
    /// through a pool. `None` means "this backend performs no paged
    /// I/O", not "unknown".
    fn buffer_stats(&self) -> Option<BufferStats> {
        None
    }
}

impl<const D: usize> SpatialIndex<D> for RTree<D> {
    fn for_each_intersecting(
        &self,
        query: &Rect<D>,
        visit: &mut dyn FnMut(Rect<D>, u64),
    ) -> Result<()> {
        self.query_region_visit(query, &mut |rect, id| visit(rect, id))
    }

    fn query(&self, query: &Rect<D>) -> Result<Vec<(Rect<D>, u64)>> {
        self.query_region(query)
    }

    fn query_point(&self, point: &Point<D>) -> Result<Vec<(Rect<D>, u64)>> {
        RTree::query_point(self, point)
    }

    fn len(&self) -> u64 {
        RTree::len(self)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            backend: "paged",
            len: RTree::len(self),
            levels: self.height(),
        }
    }

    fn buffer_stats(&self) -> Option<BufferStats> {
        Some(self.pool().stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BulkLoader, Entry, NodeCapacity};
    use std::sync::Arc;
    use storage::{BufferPool, MemDisk};

    fn tree(n: u64) -> RTree<2> {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 32));
        let entries: Vec<Entry<2>> = (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                Entry::data(Rect::new([x, y], [x + 0.5, y + 0.5]), i)
            })
            .collect();
        BulkLoader::new(NodeCapacity::new(8).unwrap())
            .load(pool, entries, &mut |es: &mut Vec<Entry<2>>, _| {
                es.sort_by(|a, b| a.rect.lo(0).total_cmp(&b.rect.lo(0)));
            })
            .unwrap()
    }

    #[test]
    fn trait_object_matches_inherent_queries() {
        let t = tree(100);
        let idx: &dyn SpatialIndex<2> = &t;
        let w = Rect::new([0.0, 0.0], [3.0, 3.0]);
        let mut via_trait = idx.query(&w).unwrap();
        let mut direct = t.query_region(&w).unwrap();
        via_trait.sort_by_key(|&(_, id)| id);
        direct.sort_by_key(|&(_, id)| id);
        assert_eq!(via_trait, direct);
        assert_eq!(idx.len(), 100);
        assert!(!idx.is_empty());
        let stats = idx.stats();
        assert_eq!(stats.backend, "paged");
        assert_eq!(stats.len, 100);
        assert!(stats.levels >= 2);
        assert!(idx.buffer_stats().is_some());
    }

    #[test]
    fn default_visitor_query_agrees_with_point_form() {
        let t = tree(100);
        let idx: &dyn SpatialIndex<2> = &t;
        let hits = idx.query_point(&[5.25, 5.25].into()).unwrap();
        assert_eq!(hits, vec![(Rect::new([5.0, 5.0], [5.5, 5.5]), 55)]);
        let mut n = 0u64;
        idx.for_each_intersecting(&Rect::new([0.0, 0.0], [9.5, 9.5]), &mut |_, _| n += 1)
            .unwrap();
        assert_eq!(n, 100);
    }
}
