//! Level-order lowering walk: read a paged tree out into per-level,
//! BFS-ordered node lists.
//!
//! The flat immutable tier (crates/flat) needs the tree's nodes grouped
//! by level, with each level's nodes in the order their parents
//! reference them — that way a parent's children occupy one contiguous
//! index range in the child level and the flat layout can replace child
//! pointers with a single "first child" index per node (flatbush-style).
//! This walk produces exactly that ordering; it is read-only and goes
//! through the same buffer pool as any query.

use crate::{Node, RTree, RTreeError, Result};
use storage::PageId;

/// One level of the tree, root level first in the containing `Vec`.
#[derive(Debug)]
pub struct LevelNodes<const D: usize> {
    /// Height above the leaves (leaves are 0), as stored in the nodes.
    pub level: u32,
    /// The level's nodes in BFS order: the root level is the single
    /// root node; below that, children appear in the order their
    /// parents' entries list them.
    pub nodes: Vec<Node<D>>,
}

impl<const D: usize> RTree<D> {
    /// Materialize every node, grouped by level, BFS order within each
    /// level. Index 0 of the result is the root level; the last element
    /// is the leaf level. An empty tree yields one level holding its
    /// single empty leaf root.
    ///
    /// Children are pushed in parent-entry order, which is the
    /// contiguity guarantee the flat lowering relies on: the children
    /// of level-`k` node `i` form one gap-free run in level `k+1`, and
    /// those runs appear in the same order as their parents.
    pub fn level_order(&self) -> Result<Vec<LevelNodes<D>>> {
        let mut levels = Vec::with_capacity(self.height as usize);
        let mut pages: Vec<PageId> = vec![self.root];
        for depth in 0..self.height {
            let expect_level = self.height - 1 - depth;
            let mut nodes = Vec::with_capacity(pages.len());
            let mut next = Vec::new();
            for &page in &pages {
                let node = self.read_node(page)?;
                if node.level != expect_level {
                    return Err(RTreeError::Corrupt {
                        page,
                        reason: format!(
                            "level-order walk expected level {expect_level}, found {}",
                            node.level
                        ),
                    });
                }
                if !node.is_leaf() {
                    next.extend(node.entries.iter().map(|e| e.child_page()));
                }
                nodes.push(node);
            }
            levels.push(LevelNodes {
                level: expect_level,
                nodes,
            });
            pages = next;
        }
        Ok(levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::BulkLoader;
    use crate::{Entry, NodeCapacity};
    use geom::{total_cmp_f64, Rect};
    use std::sync::Arc;
    use storage::{BufferPool, MemDisk};

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 256))
    }

    fn grid_entries(n: usize) -> Vec<Entry<2>> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = (i / 100) as f64;
                Entry::data(Rect::new([x, y], [x + 0.5, y + 0.5]), i as u64)
            })
            .collect()
    }

    #[test]
    fn levels_cover_whole_tree_in_parent_order() {
        let tree = BulkLoader::new(NodeCapacity::new(10).unwrap())
            .load(pool(), grid_entries(500), &mut |es, _| {
                es.sort_by(|a, b| total_cmp_f64(a.rect.lo(0), b.rect.lo(0)))
            })
            .unwrap();
        let levels = tree.level_order().unwrap();
        assert_eq!(levels.len(), tree.height() as usize);
        assert_eq!(levels[0].nodes.len(), 1, "root level is a single node");
        assert_eq!(levels[0].level, tree.height() - 1);
        assert_eq!(levels.last().unwrap().level, 0);

        // Every level's node count equals the previous level's entry count.
        for w in levels.windows(2) {
            let parent_entries: usize = w[0].nodes.iter().map(Node::len).sum();
            assert_eq!(parent_entries, w[1].nodes.len());
        }

        // Children land in parent-entry order: walking parent entries
        // left to right must reproduce child MBRs in level order, which
        // (validate's tightness invariant) equal the child node MBRs.
        for w in levels.windows(2) {
            let child_mbrs: Vec<_> = w[1].nodes.iter().map(Node::mbr).collect();
            let entry_rects: Vec<_> = w[0]
                .nodes
                .iter()
                .flat_map(|n| n.entries.iter().map(|e| e.rect))
                .collect();
            assert_eq!(entry_rects, child_mbrs);
        }

        // Leaf level carries every item exactly once.
        let mut seen: Vec<u64> = levels
            .last()
            .unwrap()
            .nodes
            .iter()
            .flat_map(|n| n.entries.iter().map(|e| e.payload))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_tree_is_one_empty_leaf_level() {
        let tree = RTree::<2>::create(pool(), NodeCapacity::new(8).unwrap()).unwrap();
        let levels = tree.level_order().unwrap();
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].level, 0);
        assert_eq!(levels[0].nodes.len(), 1);
        assert!(levels[0].nodes[0].is_empty());
    }
}
