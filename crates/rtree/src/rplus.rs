//! The R⁺-tree (Sellis, Roussopoulos, Faloutsos; VLDB 1987) — the STR
//! paper's reference \[13\], the second of the "other dynamic algorithms
//! \[1, 13\]" its introduction credits with improving R-tree quality.
//!
//! The R⁺-tree trades duplication for disjointness: sibling partitions
//! never overlap, and a data rectangle crossing a partition boundary is
//! stored in **every** leaf whose partition it intersects. The payoff is
//! the structure's signature property: a point query follows exactly one
//! root-to-leaf path (tested below by counting node fetches).
//!
//! Internal entries therefore carry *partition rectangles* (a disjoint
//! decomposition of the parent's partition), not tight MBRs — the same
//! on-page layout as the plain R-tree, different semantics. Splitting is
//! by hyperplane cut, and an internal cut propagates **downward**,
//! splitting every child subtree that straddles it.
//!
//! Faithful to the original, this implementation inherits its known
//! limitation: data whose rectangles all mutually overlap can make every
//! candidate cut non-reducing, in which case insertion reports
//! [`RTreeError::Invalid`] rather than looping (the original paper never
//! resolved this case either).

use geom::{Point, Rect};
use storage::{BufferPool, PageId};

use crate::codec::RectCodec;
use crate::store::{kind_name, NodeStore, TreeMeta, DEFAULT_TREE, KIND_RPLUS};
use crate::{codec, Entry, Node, NodeCapacity, RTreeError, Result};
use std::sync::Arc;

/// A paged R⁺-tree.
///
/// Partitions **tile the whole coordinate universe**: the root's
/// partition is a huge fixed box and every split divides a partition
/// exactly, so "dead space" — the original design's awkward case where
/// an insert lands outside every child partition — cannot arise. A data
/// rectangle is stored in every leaf whose (closed) partition it
/// intersects; leaf cuts duplicate entries that touch the cut, which
/// keeps single-path point queries exact even for boundary points.
pub struct RPlusTree<const D: usize> {
    store: NodeStore<RectCodec<D>>,
    cap: NodeCapacity,
    root: PageId,
    height: u32,
    len: u64,
}

/// Coordinate bound of the universe partition. Any realistic coordinate
/// fits comfortably inside ±10³⁰⁰.
const UNIVERSE: f64 = 1e300;

fn universe<const D: usize>() -> Rect<D> {
    Rect::new([-UNIVERSE; D], [UNIVERSE; D])
}

impl<const D: usize> std::fmt::Debug for RPlusTree<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RPlusTree")
            .field("root", &self.root)
            .field("height", &self.height)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

impl<const D: usize> RPlusTree<D> {
    /// Create an empty tree named [`DEFAULT_TREE`].
    pub fn create(pool: Arc<BufferPool>, cap: NodeCapacity) -> Result<Self> {
        Self::create_named(pool, DEFAULT_TREE, cap)
    }

    /// Create an empty tree under `name` in the pool's v2 file
    /// (formatting an empty disk first).
    pub fn create_named(pool: Arc<BufferPool>, name: &str, cap: NodeCapacity) -> Result<Self> {
        Self::check_capacity(&pool, cap)?;
        let mut store = NodeStore::create(pool, name)?;
        let root = store.alloc_page()?;
        let mut tree = Self {
            store,
            cap,
            root,
            height: 1,
            len: 0,
        };
        tree.write_node(root, &Node::new(0))?;
        tree.persist()?;
        Ok(tree)
    }

    /// Reopen the [`DEFAULT_TREE`] persisted on `pool`'s disk.
    pub fn open(pool: Arc<BufferPool>) -> Result<Self> {
        Self::open_named(pool, DEFAULT_TREE)
    }

    /// Reopen the R⁺-tree stored under `name`.
    pub fn open_named(pool: Arc<BufferPool>, name: &str) -> Result<Self> {
        let (store, meta) = NodeStore::open(pool, name)?;
        let meta_page = store.meta_page();
        if meta.kind != KIND_RPLUS {
            return Err(RTreeError::Corrupt {
                page: meta_page,
                reason: format!(
                    "tree '{name}' is a {}, not an rplus tree",
                    kind_name(meta.kind)
                ),
            });
        }
        if meta.dims as usize != D {
            return Err(RTreeError::Corrupt {
                page: meta_page,
                reason: format!("tree on disk is {}-dimensional, opened as {D}", meta.dims),
            });
        }
        let cap = NodeCapacity::with_min(meta.cap_max as usize, meta.cap_min as usize).ok_or_else(
            || RTreeError::Corrupt {
                page: meta_page,
                reason: format!("invalid capacity {}/{}", meta.cap_max, meta.cap_min),
            },
        )?;
        Self::check_capacity(store.pool(), cap)?;
        Ok(Self {
            store,
            cap,
            root: meta.root,
            height: meta.height,
            len: meta.len,
        })
    }

    /// Make the tree durable: flush nodes, commit the meta block, hand
    /// this session's freed pages to the persistent free chain.
    pub fn persist(&mut self) -> Result<()> {
        let meta = TreeMeta {
            kind: KIND_RPLUS,
            dims: D as u32,
            root: self.root,
            height: self.height,
            len: self.len,
            cap_max: self.cap.max() as u32,
            cap_min: self.cap.min() as u32,
            policy: 0,
        };
        self.store.persist(&meta)
    }

    fn check_capacity(pool: &BufferPool, cap: NodeCapacity) -> Result<()> {
        let max = codec::max_capacity::<D>(pool.page_size());
        // Splits can transiently duplicate one entry into both halves, so
        // keep one slot of slack against the physical page capacity.
        if cap.max() + 1 > max {
            return Err(RTreeError::CapacityTooLarge {
                requested: cap.max(),
                max: max - 1,
            });
        }
        Ok(())
    }

    /// Number of distinct data objects (duplicated clips count once).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.store.pool()
    }

    /// The node store (page allocation, meta persistence).
    pub fn store(&self) -> &NodeStore<RectCodec<D>> {
        &self.store
    }

    fn read_node(&self, page: PageId) -> Result<Node<D>> {
        let (level, entries) = self.store.read_node(page)?;
        Ok(Node { level, entries })
    }

    fn write_node(&self, page: PageId, node: &Node<D>) -> Result<()> {
        self.store.write_node(page, node.level, &node.entries)
    }

    fn alloc_page(&mut self) -> Result<PageId> {
        self.store.alloc_page()
    }

    // ---- queries -----------------------------------------------------

    /// All distinct `(rect, id)` pairs intersecting `query`
    /// (clip-duplicates are merged by id).
    pub fn query_region(&self, query: &Rect<D>) -> Result<Vec<(Rect<D>, u64)>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            for e in &node.entries {
                if e.rect.intersects(query) {
                    if node.is_leaf() {
                        if seen.insert(e.payload) {
                            out.push((e.rect, e.payload));
                        }
                    } else {
                        stack.push(e.child_page());
                    }
                }
            }
        }
        Ok(out)
    }

    /// All entries containing `point`. Follows a **single** path: sibling
    /// partitions are disjoint, so at most one child's partition contains
    /// the point (boundary ties resolved to the first).
    pub fn query_point(&self, point: &Point<D>) -> Result<Vec<(Rect<D>, u64)>> {
        let mut out = Vec::new();
        let mut page = self.root;
        loop {
            let node = self.read_node(page)?;
            if node.is_leaf() {
                for e in &node.entries {
                    if e.rect.contains_point(point) {
                        out.push((e.rect, e.payload));
                    }
                }
                return Ok(out);
            }
            let Some(child) = node.entries.iter().find(|e| e.rect.contains_point(point)) else {
                // Unreachable with tiling partitions; kept as a graceful
                // fallback rather than a panic.
                return Ok(out);
            };
            page = child.child_page();
        }
    }

    // ---- insertion ---------------------------------------------------

    /// Insert a data object; its rectangle is clipped into every leaf
    /// partition it intersects.
    pub fn insert(&mut self, rect: Rect<D>, id: u64) -> Result<()> {
        assert!(
            universe::<D>().contains_rect(&rect),
            "coordinates beyond ±1e300 are not supported"
        );
        let entry = Entry::data(rect, id);
        let root = self.root;
        let root_partition = universe::<D>();
        if let Some((left, right)) = self.insert_rec(root, &root_partition, entry)? {
            // Root split: new root with the two partitions.
            let new_root_page = self.alloc_page()?;
            let new_root = Node {
                level: self.height,
                entries: vec![left, right],
            };
            self.write_node(new_root_page, &new_root)?;
            self.root = new_root_page;
            self.height += 1;
        }
        self.len += 1;
        Ok(())
    }

    /// Insert into the subtree at `page` (whose partition is
    /// `partition`); returns the two replacement entries if it split.
    fn insert_rec(
        &mut self,
        page: PageId,
        partition: &Rect<D>,
        entry: Entry<D>,
    ) -> Result<Option<(Entry<D>, Entry<D>)>> {
        let mut node = self.read_node(page)?;
        if node.is_leaf() {
            node.entries.push(entry);
            if node.len() <= self.cap.max() {
                self.write_node(page, &node)?;
                return Ok(None);
            }
            return self.split_node(page, partition, node).map(Some);
        }

        // Route into every child whose (closed) partition intersects
        // the data rect; children tile this partition, so at least one
        // matches. Children that split get replaced in place.
        let mut i = 0;
        while i < node.entries.len() {
            let child = node.entries[i];
            if child.rect.intersects(&entry.rect) {
                let child_partition = child.rect;
                if let Some((l, r)) =
                    self.insert_rec(child.child_page(), &child_partition, entry)?
                {
                    node.entries[i] = l;
                    node.entries.insert(i + 1, r);
                    i += 1;
                }
            }
            i += 1;
        }

        if node.len() <= self.cap.max() {
            self.write_node(page, &node)?;
            return Ok(None);
        }
        self.split_node(page, partition, node).map(Some)
    }

    /// Split an overflowing node by a hyperplane cut inside `partition`.
    fn split_node(
        &mut self,
        page: PageId,
        partition: &Rect<D>,
        node: Node<D>,
    ) -> Result<(Entry<D>, Entry<D>)> {
        let (axis, cut) = choose_cut(&node, partition, self.cap.max()).ok_or_else(|| {
            RTreeError::Invalid(
                "R+ split degenerate: every candidate cut leaves a side overfull \
                 (mutually overlapping data, the original design's unresolved case)"
                    .into(),
            )
        })?;
        let (left_page, right_page) = self.cut_subtree(page, node, axis, cut)?;
        let (lp, rp) = split_rect(partition, axis, cut);
        Ok((Entry::child(lp, left_page), Entry::child(rp, right_page)))
    }

    /// Cut the subtree rooted in `node` (stored at `page`) at
    /// `axis = cut`, reusing `page` for the left part. Recursively cuts
    /// straddling children.
    fn cut_subtree(
        &mut self,
        page: PageId,
        node: Node<D>,
        axis: usize,
        cut: f64,
    ) -> Result<(PageId, PageId)> {
        let level = node.level;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for e in node.entries {
            if level == 0 {
                // Leaf: a data rect goes to every side it (closed-)
                // intersects — touching the cut duplicates, which is what
                // keeps single-path point queries exact at boundaries.
                if e.rect.lo(axis) < cut || e.rect.hi(axis) <= cut {
                    left.push(e);
                }
                if e.rect.hi(axis) > cut || e.rect.lo(axis) >= cut {
                    right.push(e);
                }
            } else if e.rect.hi(axis) <= cut {
                left.push(e);
            } else if e.rect.lo(axis) >= cut {
                right.push(e);
            } else {
                // Child partition straddles: split the child downward.
                let child_node = self.read_node(e.child_page())?;
                let (cl, cr) = self.cut_subtree(e.child_page(), child_node, axis, cut)?;
                let (lp, rp) = split_rect(&e.rect, axis, cut);
                left.push(Entry::child(lp, cl));
                right.push(Entry::child(rp, cr));
            }
        }
        let right_page = self.alloc_page()?;
        self.write_node(
            page,
            &Node {
                level,
                entries: left,
            },
        )?;
        self.write_node(
            right_page,
            &Node {
                level,
                entries: right,
            },
        )?;
        Ok((page, right_page))
    }

    // ---- deletion ------------------------------------------------------

    /// Delete all clips of the object with this rectangle and id.
    /// Returns whether anything was removed. Underfull nodes are left in
    /// place (the original design has no merge step); empty leaves are
    /// pruned from their parent.
    pub fn delete(&mut self, rect: &Rect<D>, id: u64) -> Result<bool> {
        let root = self.root;
        let removed = self.delete_rec(root, rect, id)?;
        if removed {
            self.len -= 1;
        }
        Ok(removed)
    }

    fn delete_rec(&mut self, page: PageId, rect: &Rect<D>, id: u64) -> Result<bool> {
        let mut node = self.read_node(page)?;
        let mut removed = false;
        if node.is_leaf() {
            let before = node.len();
            node.entries
                .retain(|e| !(e.payload == id && e.rect == *rect));
            if node.len() != before {
                removed = true;
                self.write_node(page, &node)?;
            }
            return Ok(removed);
        }
        let mut changed = false;
        let mut i = 0;
        while i < node.entries.len() {
            let child = node.entries[i];
            if child.rect.intersects(rect) && self.delete_rec(child.child_page(), rect, id)? {
                removed = true;
                // Prune a now-empty leaf child and release its page to
                // the free list (it reaches the persistent chain at the
                // next persist).
                let child_node = self.read_node(child.child_page())?;
                if child_node.is_empty() && node.len() > 1 {
                    node.entries.remove(i);
                    self.store.free_page(child.child_page());
                    changed = true;
                    continue;
                }
            }
            i += 1;
        }
        if changed {
            self.write_node(page, &node)?;
        }
        Ok(removed)
    }

    // ---- validation ----------------------------------------------------

    /// Check the R⁺ invariants: sibling partitions pairwise interior-
    /// disjoint; children contained in the parent partition; every leaf
    /// clip's rectangle intersects its leaf's partition.
    pub fn validate(&self) -> Result<()> {
        let mut stack = vec![(self.root, universe::<D>())];
        while let Some((page, partition)) = stack.pop() {
            let node = self.read_node(page)?;
            if node.is_leaf() {
                for e in &node.entries {
                    if !e.rect.intersects(&partition) {
                        return Err(RTreeError::Invalid(format!(
                            "{page}: clip {} outside its partition {partition}",
                            e.rect
                        )));
                    }
                }
                continue;
            }
            for (i, a) in node.entries.iter().enumerate() {
                if !partition.contains_rect(&a.rect) {
                    return Err(RTreeError::Invalid(format!(
                        "{page}: child partition {} escapes parent {partition}",
                        a.rect
                    )));
                }
                for b in node.entries.iter().skip(i + 1) {
                    if overlaps_interior(&a.rect, &b.rect) {
                        return Err(RTreeError::Invalid(format!(
                            "{page}: sibling partitions overlap: {} vs {}",
                            a.rect, b.rect
                        )));
                    }
                }
                stack.push((a.child_page(), a.rect));
            }
        }
        Ok(())
    }
}

/// −1 entirely below the cut, +1 entirely above, 0 straddling.
fn node_side<const D: usize>(rect: &Rect<D>, axis: usize, cut: f64) -> i32 {
    if rect.hi(axis) <= cut {
        -1
    } else if rect.lo(axis) >= cut {
        1
    } else {
        0
    }
}

/// Split `partition` at `axis = cut` into two disjoint partition rects.
fn split_rect<const D: usize>(partition: &Rect<D>, axis: usize, cut: f64) -> (Rect<D>, Rect<D>) {
    let mut lmax = *partition.max();
    lmax[axis] = cut;
    let mut rmin = *partition.min();
    rmin[axis] = cut;
    (
        Rect::new(*partition.min(), lmax),
        Rect::new(rmin, *partition.max()),
    )
}

/// Interior overlap: touching boundaries do NOT count (disjoint
/// partitions legitimately share edges).
fn overlaps_interior<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    (0..D).all(|i| a.lo(i) < b.hi(i) && b.lo(i) < a.hi(i))
}

/// Choose a cut (axis, position) for an overflowing node: candidates are
/// the entry boundaries strictly inside the partition; pick the one that
/// best balances the two sides while keeping both strictly smaller than
/// the overflowing node. `None` if no candidate reduces the node.
fn choose_cut<const D: usize>(
    node: &Node<D>,
    partition: &Rect<D>,
    _max: usize,
) -> Option<(usize, f64)> {
    let total = node.len();
    let mut best: Option<(usize, usize, f64)> = None; // (worst_side, axis, cut)
    for axis in 0..D {
        let mut candidates: Vec<f64> = node
            .entries
            .iter()
            .flat_map(|e| [e.rect.lo(axis), e.rect.hi(axis)])
            .filter(|&c| c > partition.lo(axis) && c < partition.hi(axis))
            .collect();
        candidates.sort_by(|a, b| geom::total_cmp_f64(*a, *b));
        candidates.dedup();
        for &cut in &candidates {
            let mut l = 0usize;
            let mut r = 0usize;
            for e in &node.entries {
                match node_side(&e.rect, axis, cut) {
                    -1 => l += 1,
                    1 => r += 1,
                    _ => {
                        l += 1;
                        r += 1;
                    }
                }
            }
            if l == 0 || r == 0 || l >= total || r >= total {
                continue; // does not reduce
            }
            let worst = l.max(r);
            if best.is_none_or(|(w, _, _)| worst < w) {
                best = Some((worst, axis, cut));
            }
        }
    }
    best.map(|(_, axis, cut)| (axis, cut))
}

/// Convenience: build an R⁺-tree by inserting every item of an existing
/// collection (no bulk loader exists for R⁺ in the literature of the
/// paper's era).
pub fn rplus_from_items<const D: usize>(
    pool: Arc<BufferPool>,
    items: &[(Rect<D>, u64)],
    cap: NodeCapacity,
) -> Result<RPlusTree<D>> {
    let mut tree = RPlusTree::create(pool, cap)?;
    for (rect, id) in items {
        tree.insert(*rect, *id)?;
    }
    tree.persist()?;
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use storage::MemDisk;

    fn new_tree(cap: usize) -> RPlusTree<2> {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 512));
        RPlusTree::create(pool, NodeCapacity::new(cap).unwrap()).unwrap()
    }

    fn random_items(n: usize, seed: u64, size: f64) -> Vec<(Rect<2>, u64)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..0.95);
                let y: f64 = rng.gen_range(0.0..0.95);
                let s: f64 = rng.gen_range(0.0..size);
                (Rect::new([x, y], [x + s, y + s]), i as u64)
            })
            .collect()
    }

    #[test]
    fn insert_and_region_query_match_brute_force() {
        let items = random_items(2_000, 1, 0.02);
        let mut t = new_tree(16);
        for (r, id) in &items {
            t.insert(*r, *id).unwrap();
        }
        assert_eq!(t.len(), 2_000);
        t.validate().unwrap();
        for q in [
            Rect::new([0.2, 0.2], [0.5, 0.6]),
            Rect::new([0.0, 0.0], [1.0, 1.0]),
            Rect::new([0.9, 0.9], [0.95, 0.95]),
        ] {
            let mut expect: Vec<u64> = items
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|(_, id)| *id)
                .collect();
            let mut got: Vec<u64> = t
                .query_region(&q)
                .unwrap()
                .into_iter()
                .map(|(_, id)| id)
                .collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(expect, got, "query {q}");
        }
    }

    #[test]
    fn point_queries_follow_a_single_path() {
        // The R+ signature: one node fetch per level for a point query.
        let items = random_items(3_000, 2, 0.01);
        let mut t = new_tree(32);
        for (r, id) in &items {
            t.insert(*r, *id).unwrap();
        }
        t.validate().unwrap();
        let pool = t.pool();
        let probes = datagen_probes(500);
        pool.set_capacity(1).unwrap(); // force every fetch to count
        pool.reset_stats();
        for p in &probes {
            t.query_point(&Point::new(*p)).unwrap();
        }
        let per_query = (pool.stats().hits + pool.stats().misses) as f64 / probes.len() as f64;
        assert!(
            per_query <= t.height() as f64 + 1e-9,
            "point query touched {per_query} nodes, height {}",
            t.height()
        );
    }

    fn datagen_probes(n: usize) -> Vec<[f64; 2]> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        (0..n)
            .map(|_| [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect()
    }

    #[test]
    fn point_query_matches_brute_force() {
        let items = random_items(1_500, 3, 0.05);
        let mut t = new_tree(16);
        for (r, id) in &items {
            t.insert(*r, *id).unwrap();
        }
        t.validate().unwrap();
        for p in datagen_probes(300) {
            let pt = Point::new(p);
            let mut expect: Vec<u64> = items
                .iter()
                .filter(|(r, _)| r.contains_point(&pt))
                .map(|(_, id)| *id)
                .collect();
            let mut got: Vec<u64> = t
                .query_point(&pt)
                .unwrap()
                .into_iter()
                .map(|(_, id)| id)
                .collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(expect, got, "point {pt}");
        }
    }

    #[test]
    fn delete_removes_all_clips() {
        let items = random_items(800, 7, 0.08); // big rects → many clips
        let mut t = new_tree(8);
        for (r, id) in &items {
            t.insert(*r, *id).unwrap();
        }
        for (r, id) in items.iter().step_by(2) {
            assert!(t.delete(r, *id).unwrap());
        }
        assert_eq!(t.len(), 400);
        t.validate().unwrap();
        // Deleted items gone from every partition.
        for (r, id) in items.iter().step_by(2) {
            let hits = t.query_region(r).unwrap();
            assert!(!hits.iter().any(|(_, i)| i == id), "clip of {id} survived");
        }
        // Survivors intact.
        for (r, id) in items.iter().skip(1).step_by(2).take(50) {
            let hits = t.query_region(r).unwrap();
            assert!(hits.iter().any(|(_, i)| i == id), "{id} lost");
        }
    }

    #[test]
    fn partitions_stay_disjoint_under_churn() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut t = new_tree(8);
        let mut live: Vec<(Rect<2>, u64)> = Vec::new();
        let mut id = 0u64;
        for _ in 0..800 {
            if live.is_empty() || rng.gen_bool(0.7) {
                let x = rng.gen_range(0.0..0.9);
                let y = rng.gen_range(0.0..0.9);
                let s = rng.gen_range(0.0..0.05);
                let r = Rect::new([x, y], [x + s, y + s]);
                t.insert(r, id).unwrap();
                live.push((r, id));
                id += 1;
            } else {
                let i = rng.gen_range(0..live.len());
                let (r, vid) = live.swap_remove(i);
                assert!(t.delete(&r, vid).unwrap());
            }
        }
        t.validate().unwrap();
        assert_eq!(t.len() as usize, live.len());
    }

    #[test]
    fn empty_tree_queries() {
        let t = new_tree(8);
        assert!(t.query_region(&Rect::unit()).unwrap().is_empty());
        assert!(t.query_point(&Point::new([0.5, 0.5])).unwrap().is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn convenience_builder() {
        let items = random_items(500, 6, 0.01);
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 256));
        let t = rplus_from_items(pool, &items, NodeCapacity::new(10).unwrap()).unwrap();
        assert_eq!(t.len(), 500);
        t.validate().unwrap();
    }
}
