//! The tree object: metadata, node I/O, queries, traversal, validation.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use geom::{Point, Rect};
use obs::flight::EventKind;
use obs::{LazyCounter, LazyHistogram};
use storage::{BufferPool, PageId, Wal};

use crate::codec::RectCodec;
use crate::store::{NodeStore, TreeMeta, DEFAULT_TREE, KIND_RTREE};
use crate::{codec, Node, NodeCapacity, RTreeError, Result, SplitPolicy};

// Traversal instrumentation (all gated on `obs::enabled()`; the hot
// loop counts into locals and publishes once per query, so the cost
// when enabled is a handful of atomics per *query*, not per node).
static QUERIES: LazyCounter = LazyCounter::new("rtree.queries");
static NODES_VISITED: LazyHistogram = LazyHistogram::new("rtree.query.nodes_visited");
static LEAF_TOUCHES: LazyCounter = LazyCounter::new("rtree.query.leaf_touches");
static INTERNAL_TOUCHES: LazyCounter = LazyCounter::new("rtree.query.internal_touches");
/// Ordinal linking each query's start/end flight events.
static QUERY_SEQ: AtomicU64 = AtomicU64::new(0);

// WAL-mode commit instrumentation (shared with the snapshot layer).
pub(crate) static WAL_TREE_COMMITS: LazyCounter = LazyCounter::new("rtree.wal.commits");
static WAL_PAGES_REMAPPED: LazyCounter = LazyCounter::new("rtree.wal.pages_remapped");

/// A paged R-tree of dimension `D`.
///
/// All node reads and writes go through the LRU buffer pool, so buffer
/// misses during a query are exactly the paper's "disk accesses". Tree
/// metadata lives on its meta page (page 0 in a v1 image, a
/// catalog-assigned page in a v2 file), written *directly* to disk
/// (bypassing the pool) so it never competes with nodes for buffer
/// frames — mirroring the paper's setup where the buffer holds R-tree
/// nodes only. Page acquire/release and meta persistence are delegated
/// to the shared [`NodeStore`] substrate.
///
/// ```
/// use std::sync::Arc;
/// use rtree::{NodeCapacity, RTree};
/// use storage::{BufferPool, MemDisk};
/// use geom::Rect;
///
/// let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 64));
/// let mut tree = RTree::<2>::create(pool, NodeCapacity::new(16).unwrap()).unwrap();
/// for i in 0..100u64 {
///     let x = (i % 10) as f64 / 10.0;
///     let y = (i / 10) as f64 / 10.0;
///     tree.insert(Rect::new([x, y], [x + 0.05, y + 0.05]), i).unwrap();
/// }
/// let hits = tree.query_region(&Rect::new([0.0, 0.0], [0.31, 0.11])).unwrap();
/// assert_eq!(hits.len(), 8);
/// tree.validate(true).unwrap();
/// ```
pub struct RTree<const D: usize> {
    pub(crate) store: NodeStore<RectCodec<D>>,
    cap: NodeCapacity,
    policy: SplitPolicy,
    pub(crate) root: PageId,
    /// Number of levels (1 = the root is a leaf).
    pub(crate) height: u32,
    pub(crate) len: u64,
    /// Set when a staged mutation failed partway through its commit, so
    /// the on-disk pages may mix old and new state. Mutations are
    /// refused from then on ([`RTreeError::Poisoned`]).
    pub(crate) poisoned: bool,
    /// Commit copy-on-write behind a WAL (set by [`RTree::attach_wal`]):
    /// staged commits never overwrite a committed page in place — every
    /// modified committed page is rewritten at a fresh location and the
    /// whole transaction (images, allocations, meta) is logged before
    /// the meta page moves.
    pub(crate) cow: bool,
    /// When set (snapshot publishing), pages a COW commit supersedes are
    /// parked in `pending_frees` instead of being handed back to the
    /// store, so their reuse can additionally wait for readers pinning
    /// older epochs to drain.
    pub(crate) collect_frees: bool,
    /// Superseded committed pages awaiting epoch release (see
    /// `collect_frees`).
    pub(crate) pending_frees: Vec<PageId>,
}

/// A pending multi-page mutation, buffered so it can be applied
/// atomically (with respect to errors) or abandoned without touching the
/// committed tree.
///
/// Mutations run in two phases. Phase 1 computes every node write into
/// this overlay, reading through it ([`RTree::staged_read`]) so the
/// operation sees its own effects; any error here aborts with the tree
/// exactly as it was. Phase 2 ([`RTree::commit_staging`]) replays the
/// writes through the buffer pool and only then adopts the new
/// root/height and releases freed pages.
pub(crate) struct Staging<const D: usize> {
    /// Ordered node writes; later writes to the same page supersede
    /// earlier ones.
    writes: Vec<(PageId, Node<D>)>,
    /// Pages acquired for the overlay (free-list pops or fresh disk
    /// allocations) — returned to the free list if the staging is
    /// abandoned.
    allocated: Vec<PageId>,
    /// Pages the mutation releases — added to the free list on commit.
    freed: Vec<PageId>,
    /// Staged root page (may differ from the committed one after a root
    /// split or collapse).
    pub(crate) root: PageId,
    /// Staged height.
    pub(crate) height: u32,
    /// Staged object count — adjusted by the operation *before* commit
    /// so a WAL transaction's meta image carries the post-commit length.
    pub(crate) len: u64,
}

/// A COW transaction that has been staged into the WAL but not yet made
/// durable: the output of [`RTree::stage_commit_cow`], consumed by
/// [`RTree::finish_commit_cow`]. The meta image rides along because it
/// must not reach the buffer pool before the commit fsync.
pub(crate) struct StagedTx {
    /// The transaction's commit LSN.
    pub(crate) lsn: u64,
    /// Where the meta image goes once the transaction is durable.
    pub(crate) meta_page: PageId,
    /// The encoded meta page carrying the new root.
    pub(crate) meta_image: Vec<u8>,
}

impl<const D: usize> Staging<D> {
    /// Stage a node write.
    pub(crate) fn write(&mut self, page: PageId, node: Node<D>) {
        self.writes.push((page, node));
    }

    /// Stage a page release.
    pub(crate) fn free(&mut self, page: PageId) {
        self.freed.push(page);
    }
}

impl<const D: usize> std::fmt::Debug for RTree<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("dims", &D)
            .field("root", &self.root)
            .field("height", &self.height)
            .field("len", &self.len)
            .field("capacity", &self.cap)
            .finish_non_exhaustive()
    }
}

impl<const D: usize> RTree<D> {
    /// Create an empty tree named [`DEFAULT_TREE`] on `pool`'s disk,
    /// formatting the disk as a v2 file if it is empty.
    pub fn create(pool: Arc<BufferPool>, cap: NodeCapacity) -> Result<Self> {
        Self::create_named(pool, DEFAULT_TREE, cap)
    }

    /// Create an empty tree under `name`. An empty disk is formatted as
    /// a v2 file (superblock + allocator + catalog); a disk already
    /// holding a v2 file gains another catalog entry, so several named
    /// trees share the pages of one file.
    pub fn create_named(pool: Arc<BufferPool>, name: &str, cap: NodeCapacity) -> Result<Self> {
        Self::check_capacity(&pool, cap)?;
        let mut store = NodeStore::create(pool, name)?;
        let root = store.alloc_page()?;
        let mut tree = Self {
            store,
            cap,
            policy: SplitPolicy::default(),
            root,
            height: 1,
            len: 0,
            poisoned: false,
            cow: false,
            collect_frees: false,
            pending_frees: Vec::new(),
        };
        tree.write_node(root, &Node::new(0))?;
        tree.persist()?;
        Ok(tree)
    }

    /// Assemble a tree around an already-built root (used by the bulk
    /// loader).
    pub(crate) fn from_parts(
        store: NodeStore<RectCodec<D>>,
        cap: NodeCapacity,
        root: PageId,
        height: u32,
        len: u64,
    ) -> Self {
        Self {
            store,
            cap,
            policy: SplitPolicy::default(),
            root,
            height,
            len,
            poisoned: false,
            cow: false,
            collect_frees: false,
            pending_frees: Vec::new(),
        }
    }

    /// Reopen the [`DEFAULT_TREE`] persisted on `pool`'s disk — a v2
    /// file's "default" catalog entry, or a legacy v1 single-tree image
    /// (which stays fully usable, and stays v1 on re-persist).
    pub fn open(pool: Arc<BufferPool>) -> Result<Self> {
        Self::open_named(pool, DEFAULT_TREE)
    }

    /// Reopen the tree stored under `name`.
    pub fn open_named(pool: Arc<BufferPool>, name: &str) -> Result<Self> {
        let (store, meta) = NodeStore::open(pool, name)?;
        let meta_page = store.meta_page();
        if meta.kind != KIND_RTREE {
            return Err(RTreeError::Corrupt {
                page: meta_page,
                reason: format!(
                    "tree '{name}' is a {}, not an rtree",
                    crate::store::kind_name(meta.kind)
                ),
            });
        }
        if meta.dims as usize != D {
            return Err(RTreeError::Corrupt {
                page: meta_page,
                reason: format!("tree on disk is {}-dimensional, opened as {D}", meta.dims),
            });
        }
        let cap = NodeCapacity::with_min(meta.cap_max as usize, meta.cap_min as usize).ok_or_else(
            || RTreeError::Corrupt {
                page: meta_page,
                reason: format!("invalid capacity {}/{}", meta.cap_max, meta.cap_min),
            },
        )?;
        Self::check_capacity(store.pool(), cap)?;
        Ok(Self {
            store,
            cap,
            policy: SplitPolicy::from_tag(meta.policy),
            root: meta.root,
            height: meta.height,
            len: meta.len,
            poisoned: false,
            cow: false,
            collect_frees: false,
            pending_frees: Vec::new(),
        })
    }

    /// Write metadata to the tree's meta page (directly to disk,
    /// bypassing the buffer) and flush dirty node pages. After
    /// `persist`, [`RTree::open`] on the same disk reconstructs the
    /// tree.
    ///
    /// Pages released by deletions this session are handed to the
    /// format-v2 persistent free chain here (after the meta write, so a
    /// crash can only leak them, never double-allocate) — a reopened
    /// tree reuses freed pages instead of stranding them. Legacy v1
    /// images have no on-disk free list; for them the session free list
    /// really is discarded, and `check` reports the stranded pages.
    pub fn persist(&mut self) -> Result<()> {
        let meta = TreeMeta {
            kind: KIND_RTREE,
            dims: D as u32,
            root: self.root,
            height: self.height,
            len: self.len,
            cap_max: self.cap.max() as u32,
            cap_min: self.cap.min() as u32,
            policy: self.policy.tag(),
        };
        self.store.persist(&meta)
    }

    fn check_capacity(pool: &BufferPool, cap: NodeCapacity) -> Result<()> {
        let max = codec::max_capacity::<D>(pool.page_size());
        if cap.max() > max {
            return Err(RTreeError::CapacityTooLarge {
                requested: cap.max(),
                max,
            });
        }
        Ok(())
    }

    /// The buffer pool (for I/O statistics: a query's disk accesses are
    /// the pool's miss-count delta across the query).
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.store.pool()
    }

    /// The node store (page allocation, meta persistence, fsck).
    pub fn store(&self) -> &NodeStore<RectCodec<D>> {
        &self.store
    }

    /// Node capacity.
    pub fn capacity(&self) -> NodeCapacity {
        self.cap
    }

    /// Split policy used by dynamic insertion.
    pub fn split_policy(&self) -> SplitPolicy {
        self.policy
    }

    /// Set the split policy for subsequent insertions.
    pub fn set_split_policy(&mut self, policy: SplitPolicy) {
        self.policy = policy;
    }

    /// Number of data objects.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root page id.
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// MBR of the whole tree (empty rect for an empty tree).
    pub fn root_mbr(&self) -> Result<Rect<D>> {
        self.with_view(self.root, |node| node.mbr())
    }

    // ---- node I/O ----------------------------------------------------

    /// Read and decode the node on `page` through the buffer pool into an
    /// owned [`Node`] — the mutation-path representation.
    pub(crate) fn read_node(&self, page: PageId) -> Result<Node<D>> {
        let (level, entries) = self.store.read_node(page)?;
        Ok(Node { level, entries })
    }

    /// Run `f` on a zero-copy [`NodeView`](codec::NodeView) of the node
    /// on `page` — the read-path access: the page is validated in place
    /// and nothing is materialized.
    ///
    /// A shared lock on the page's frame is held while `f` runs (other
    /// readers proceed concurrently; an evictor recycling this frame
    /// would wait), so `f` must not re-enter the pool (no nested node
    /// reads): traversals collect the child pages they want and recurse
    /// after `f` returns.
    pub(crate) fn with_view<R>(
        &self,
        page: PageId,
        f: impl FnOnce(&codec::NodeView<'_, D>) -> R,
    ) -> Result<R> {
        self.store.pool().with_page(page, |bytes| {
            let view = codec::NodeView::parse(bytes, page)?;
            Ok(f(&view))
        })?
    }

    /// Encode and write `node` to `page` through the buffer pool,
    /// serializing straight into the frame (no staging buffer).
    pub(crate) fn write_node(&self, page: PageId, node: &Node<D>) -> Result<()> {
        self.store.write_node(page, node.level, &node.entries)
    }

    /// Get a page for a new node: reuse a freed page (this session's
    /// list first, then the persistent free chain) or allocate.
    pub(crate) fn alloc_page(&mut self) -> Result<PageId> {
        self.store.alloc_page()
    }

    /// Return a page to the free list.
    pub(crate) fn free_page(&mut self, page: PageId) {
        self.store.free_page(page);
    }

    // ---- staged mutations ---------------------------------------------

    /// Whether a failed commit has poisoned the tree (see
    /// [`RTreeError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    pub(crate) fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            Err(RTreeError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Open a staging overlay mirroring the current tree shape.
    pub(crate) fn begin_staging(&self) -> Staging<D> {
        Staging {
            writes: Vec::new(),
            allocated: Vec::new(),
            freed: Vec::new(),
            root: self.root,
            height: self.height,
            len: self.len,
        }
    }

    /// Read a node through the staging overlay: the most recent staged
    /// write wins, otherwise the node comes from the pool.
    pub(crate) fn staged_read(&self, st: &Staging<D>, page: PageId) -> Result<Node<D>> {
        for (p, node) in st.writes.iter().rev() {
            if *p == page {
                return Ok(node.clone());
            }
        }
        self.read_node(page)
    }

    /// Acquire a page for a node created during staging. Reuses the free
    /// list or allocates from disk; either way the page is unreferenced
    /// by the committed tree, so an abandoned staging can simply hand it
    /// back to the free list.
    pub(crate) fn staged_alloc(&mut self, st: &mut Staging<D>) -> Result<PageId> {
        let page = self.alloc_page()?;
        st.allocated.push(page);
        Ok(page)
    }

    /// Throw away a staging overlay. The committed tree was never
    /// touched, so this is the "clean abandonment" path after a phase-1
    /// error: pages acquired for the overlay go back to the free list
    /// and nothing else changes.
    pub(crate) fn abandon_staging(&mut self, st: Staging<D>) {
        self.store.extend_free(st.allocated);
    }

    /// Apply a staging overlay to the tree: write every staged node (in
    /// order, so later writes to a page win), then adopt the staged
    /// root/height and release the staged frees.
    ///
    /// If a write fails before anything was applied the staging is
    /// abandoned cleanly. If it fails after at least one page reached
    /// the pool, the tree now mixes old and new pages and is marked
    /// poisoned: further mutations return [`RTreeError::Poisoned`].
    pub(crate) fn commit_staging(&mut self, st: Staging<D>) -> Result<()> {
        if self.cow {
            return self.commit_staging_cow(st);
        }
        for (applied, (page, node)) in st.writes.iter().enumerate() {
            if let Err(e) = self.write_node(*page, node) {
                if applied == 0 {
                    self.abandon_staging(st);
                } else {
                    self.poisoned = true;
                    // Leave the poisoning itself on the record, then
                    // dump everything leading up to it: this is the
                    // moment the recent-event window is worth keeping.
                    obs::flight::record(EventKind::TreePoisoned, self.root.index(), 0);
                    if obs::enabled() {
                        obs::flight::dump_to_stderr("tree poisoned mid-commit");
                    }
                }
                return Err(e);
            }
        }
        self.root = st.root;
        self.height = st.height;
        self.len = st.len;
        self.store.extend_free(st.freed);
        Ok(())
    }

    /// Commit a staging overlay as one WAL transaction, copy-on-write.
    ///
    /// No committed page is ever overwritten in place: every staged
    /// write to a committed page is redirected to a freshly allocated
    /// *shadow* page and the child pointers referencing it are rewritten
    /// through the same remap — sound because every mutation stages its
    /// full root-to-leaf path, so a remapped page's parent is always in
    /// the write set too. Readers holding the old root therefore keep a
    /// perfectly consistent tree, and a crash can never tear a committed
    /// page.
    ///
    /// Ordering (the durability argument):
    ///
    /// 1. Shadow pages are allocated and all node images are written
    ///    through the buffer pool. These pages are unreachable from the
    ///    durable meta, so even an eager eviction writing them to the
    ///    media early is harmless — and a failure here aborts with the
    ///    committed tree untouched.
    /// 2. The transaction (node images + the new meta image + the pages
    ///    it allocated) is staged into the WAL and committed — one fsync
    ///    (possibly shared with other writers) makes it durable.
    /// 3. Only now is the meta page written through the pool and the new
    ///    root adopted in memory: the meta can only reach the media
    ///    *after* the log records that justify it.
    ///
    /// A failure after step 2 began leaves durability ambiguous (the
    /// records may surface in a later batch's fsync), so the tree is
    /// poisoned rather than guessing.
    fn commit_staging_cow(&mut self, st: Staging<D>) -> Result<()> {
        let tx = self.stage_commit_cow(st)?;
        self.finish_commit_cow(tx)
    }

    /// Steps 1–2a of the COW commit: shadow allocation, pool writes,
    /// WAL staging, in-memory adoption. Returns the pending transaction
    /// for [`finish_commit_cow`](Self::finish_commit_cow); the snapshot
    /// layer runs the finish *outside* its writer lock so concurrent
    /// writers share one group-commit fsync (WAL ordering makes the
    /// early adoption sound: `lsn` durable implies every earlier lsn
    /// durable, so a crash always loses a suffix, never a middle).
    pub(crate) fn stage_commit_cow(&mut self, st: Staging<D>) -> Result<StagedTx> {
        let Staging {
            writes,
            allocated,
            freed,
            root,
            height,
            len,
        } = st;
        // Final image per page: the last staged write wins; writes to
        // pages the same operation also freed never materialize.
        let freed_set: HashSet<u64> = freed.iter().map(|p| p.index()).collect();
        let mut order: Vec<PageId> = Vec::new();
        let mut latest: HashMap<u64, Node<D>> = HashMap::new();
        for (page, node) in writes {
            if latest.insert(page.index(), node).is_none() && !freed_set.contains(&page.index()) {
                order.push(page);
            }
        }
        let fresh: HashSet<u64> = allocated.iter().map(|p| p.index()).collect();

        // Shadow allocation for every committed page in the write set.
        let mut remap: HashMap<u64, PageId> = HashMap::new();
        let mut targets: Vec<PageId> = Vec::new();
        for p in order.iter().filter(|p| !fresh.contains(&p.index())) {
            match self.store.alloc_page() {
                Ok(t) => {
                    remap.insert(p.index(), t);
                    targets.push(t);
                }
                Err(e) => {
                    self.store.extend_reusable(targets);
                    self.store.extend_reusable(allocated);
                    return Err(e);
                }
            }
        }

        // Encode the final images (child pointers rewritten through the
        // remap) and push them into the pool at their final locations.
        let page_size = self.store.pool().disk().page_size();
        let mut images: Vec<(PageId, Vec<u8>)> = Vec::with_capacity(order.len() + 1);
        let abort = |tree: &mut Self, targets: Vec<PageId>, allocated: Vec<PageId>| {
            tree.store.extend_reusable(targets);
            tree.store.extend_reusable(allocated);
        };
        for p in &order {
            let mut node = latest.remove(&p.index()).expect("staged write vanished");
            if node.level > 0 {
                for e in &mut node.entries {
                    if let Some(t) = remap.get(&e.payload) {
                        e.payload = t.index();
                    }
                }
            }
            let target = remap.get(&p.index()).copied().unwrap_or(*p);
            let mut buf = vec![0u8; page_size];
            crate::store::encode_node::<RectCodec<D>>(node.level, &node.entries, &mut buf);
            if let Err(e) = self.store.pool().write_page(target, &buf) {
                abort(self, targets, allocated);
                return Err(e.into());
            }
            images.push((target, buf));
        }

        let new_root = remap.get(&root.index()).copied().unwrap_or(root);
        let meta = TreeMeta {
            kind: KIND_RTREE,
            dims: D as u32,
            root: new_root,
            height,
            len,
            cap_max: self.cap.max() as u32,
            cap_min: self.cap.min() as u32,
            policy: self.policy.tag(),
        };
        let meta_image = match self.store.encode_meta(&meta) {
            Ok(img) => img,
            Err(e) => {
                abort(self, targets, allocated);
                return Err(e);
            }
        };
        images.push((self.store.meta_page(), meta_image));

        // Stage the transaction into the WAL's shared batch.
        let wal = self
            .store
            .wal()
            .cloned()
            .expect("cow set without an attached wal");
        let image_refs: Vec<(PageId, &[u8])> =
            images.iter().map(|(p, b)| (*p, b.as_slice())).collect();
        let allocs: Vec<PageId> = allocated
            .iter()
            .copied()
            .filter(|p| !freed_set.contains(&p.index()))
            .chain(targets.iter().copied())
            .collect();
        let ticket = match wal.append_tx(&image_refs, &allocs) {
            Ok(t) => t,
            Err(e) => {
                abort(self, targets, allocated);
                return Err(e.into());
            }
        };
        WAL_PAGES_REMAPPED.add(remap.len() as u64);
        let (meta_page, meta_image) = images.pop().expect("meta image present");

        self.root = new_root;
        self.height = height;
        self.len = len;

        // Page bookkeeping: fresh pages the operation also freed were
        // never durably referenced (reusable at once); superseded
        // committed pages (explicit frees + shadow sources) must outlive
        // any pinned snapshot and the next checkpoint.
        let (fresh_frees, committed_frees): (Vec<_>, Vec<_>) =
            freed.into_iter().partition(|p| fresh.contains(&p.index()));
        self.store.extend_reusable(fresh_frees);
        let supersede = committed_frees
            .into_iter()
            .chain(remap.keys().map(|&p| PageId(p)));
        if self.collect_frees {
            self.pending_frees.extend(supersede);
        } else {
            self.store.extend_free(supersede);
        }
        // Fresh pages that ended up unused (allocated, then neither
        // written nor freed) go straight back too.
        let used: HashSet<u64> = order.iter().map(|p| p.index()).collect();
        let unused: Vec<PageId> = allocated
            .into_iter()
            .filter(|p| !used.contains(&p.index()) && !freed_set.contains(&p.index()))
            .collect();
        self.store.extend_reusable(unused);
        Ok(StagedTx {
            lsn: ticket.lsn,
            meta_page,
            meta_image,
        })
    }

    /// Steps 2b–3 of the COW commit: make the staged transaction durable
    /// (the fsync, possibly shared with a whole batch of writers) and
    /// only then let the meta page travel through the pool. A failure
    /// here leaves durability ambiguous — the records may still surface
    /// in a later batch's fsync — so the tree is poisoned rather than
    /// guessing.
    pub(crate) fn finish_commit_cow(&mut self, tx: StagedTx) -> Result<()> {
        let wal = self
            .store
            .wal()
            .cloned()
            .expect("cow set without an attached wal");
        let commit_res = wal
            .commit(tx.lsn)
            .and_then(|()| self.store.pool().write_page(tx.meta_page, &tx.meta_image));
        if let Err(e) = commit_res {
            self.poisoned = true;
            obs::flight::record(EventKind::TreePoisoned, self.root.index(), 0);
            if obs::enabled() {
                obs::flight::dump_to_stderr("tree poisoned mid-WAL-commit");
            }
            return Err(e.into());
        }
        wal.tx_applied(tx.lsn);
        WAL_TREE_COMMITS.inc();
        Ok(())
    }

    /// Put a write-ahead log in front of this tree's writes. Staged
    /// commits become copy-on-write WAL transactions (see
    /// [`commit_staging_cow`](Self::commit_staging_cow)); [`persist`]
    /// (Self::persist) doubles as the checkpoint that advances the
    /// superblock watermark and recycles fully-applied segments.
    ///
    /// Requires a v2 file. Direct-write paths that bypass staging
    /// ([`insert_rstar`](Self::insert_rstar)) are refused on a
    /// WAL-attached tree, and [`bulk_insert`](Self::bulk_insert) falls
    /// back to ordinary logged insertions.
    pub fn attach_wal(&mut self, wal: Arc<Wal>) -> Result<()> {
        self.store.attach_wal(wal)?;
        self.cow = true;
        Ok(())
    }

    /// Whether a WAL is attached (commits are copy-on-write).
    pub fn is_wal_attached(&self) -> bool {
        self.cow
    }

    /// Route superseded committed pages into
    /// [`take_pending_frees`](Self::take_pending_frees) instead of the
    /// store (snapshot publishing defers their reuse past reader
    /// epochs).
    pub(crate) fn set_collect_frees(&mut self, on: bool) {
        self.collect_frees = on;
    }

    /// Drain the pages parked by `collect_frees`.
    pub(crate) fn take_pending_frees(&mut self) -> Vec<PageId> {
        std::mem::take(&mut self.pending_frees)
    }

    /// Hand epoch garbage back to the store once no snapshot can still
    /// reach it (reuse still waits for the next checkpoint in WAL mode).
    pub(crate) fn release_pages(&mut self, pages: Vec<PageId>) {
        self.store.extend_free(pages);
    }

    /// A read-only view of this tree pinned at the given published
    /// state, backed by a reader clone of the store: same pool and
    /// allocator, no session free lists, no WAL. Queries work; any
    /// mutation through it would corrupt the real tree, which is why
    /// this stays crate-internal (the snapshot layer wraps it safely).
    pub(crate) fn reader_at(&self, root: PageId, height: u32, len: u64) -> RTree<D> {
        RTree {
            store: self.store.reader_clone(),
            cap: self.cap,
            policy: self.policy,
            root,
            height,
            len,
            poisoned: false,
            cow: false,
            collect_frees: false,
            pending_frees: Vec::new(),
        }
    }

    // ---- queries ------------------------------------------------------

    /// All `(rect, data-id)` pairs whose rectangle intersects `query`.
    ///
    /// This is the recursive procedure of §2.1: starting at the root,
    /// retrieve the rectangles at each node that intersect the query;
    /// recurse into the corresponding subtrees of internal nodes; report
    /// matching leaf entries.
    pub fn query_region(&self, query: &Rect<D>) -> Result<Vec<(Rect<D>, u64)>> {
        let mut out = Vec::new();
        self.query_region_visit(query, &mut |rect, id| out.push((rect, id)))?;
        Ok(out)
    }

    /// Visitor-form region query (no result allocation).
    ///
    /// Traverses through zero-copy node views: each visited page is
    /// validated once and its entries are read directly out of the
    /// buffer-pool frame, so a warm query performs no per-node heap
    /// allocation at all. The decoded reference implementation is
    /// [`query_region_visit_decoded`](Self::query_region_visit_decoded).
    pub fn query_region_visit(
        &self,
        query: &Rect<D>,
        visit: &mut impl FnMut(Rect<D>, u64),
    ) -> Result<()> {
        // One flag check per query; when off, the traversal below is
        // byte-identical to the uninstrumented loop (locals only).
        let track = obs::enabled();
        let ordinal = if track {
            let ordinal = QUERY_SEQ.fetch_add(1, Ordering::Relaxed);
            obs::flight::record(EventKind::QueryStart, ordinal, 0);
            ordinal
        } else {
            0
        };
        let _tspan = obs::trace::span("rtree.query");
        let mut nodes = 0u64;
        let mut leaves = 0u64;
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            // Per-node span: a page fetched from disk shows the read as
            // a child, giving traces the query → node → read shape.
            let _node_span = obs::trace::span("rtree.node");
            self.with_view(page, |node| {
                if track {
                    nodes += 1;
                    leaves += u64::from(node.is_leaf());
                }
                if node.is_leaf() {
                    node.for_each_intersecting(query, &mut |i| {
                        visit(node.rect(i), node.payload(i));
                    });
                } else {
                    node.for_each_intersecting(query, &mut |i| {
                        stack.push(node.child_page(i));
                    });
                }
            })?;
        }
        if track {
            QUERIES.inc();
            NODES_VISITED.record(nodes);
            LEAF_TOUCHES.add(leaves);
            INTERNAL_TOUCHES.add(nodes - leaves);
            obs::flight::record(EventKind::QueryEnd, ordinal, nodes);
        }
        Ok(())
    }

    /// Visitor-form region query over fully decoded nodes — the
    /// reference implementation the zero-copy path is differentially
    /// tested (and benchmarked) against. Kept public so those
    /// comparisons exercise exactly the shipped code.
    pub fn query_region_visit_decoded(
        &self,
        query: &Rect<D>,
        visit: &mut impl FnMut(Rect<D>, u64),
    ) -> Result<()> {
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            if node.is_leaf() {
                for e in node.matching(query) {
                    visit(e.rect, e.payload);
                }
            } else {
                for e in node.matching(query) {
                    stack.push(e.child_page());
                }
            }
        }
        Ok(())
    }

    /// All `(rect, data-id)` pairs whose rectangle contains `point`.
    pub fn query_point(&self, point: &Point<D>) -> Result<Vec<(Rect<D>, u64)>> {
        self.query_region(&Rect::from_point(*point))
    }

    /// Count of intersecting entries, without materializing them.
    pub fn count_region(&self, query: &Rect<D>) -> Result<u64> {
        let mut n = 0u64;
        self.query_region_visit(query, &mut |_, _| n += 1)?;
        Ok(n)
    }

    /// All entries whose rectangle lies entirely **inside** `query`
    /// (containment query). Subtrees whose MBR is fully inside the query
    /// are reported without further filtering; subtrees that merely
    /// intersect are descended.
    pub fn query_contained(&self, query: &Rect<D>) -> Result<Vec<(Rect<D>, u64)>> {
        let mut out = Vec::new();
        // (page, known_contained): once an ancestor MBR is inside the
        // query, every entry below is too.
        let mut stack = vec![(self.root, false)];
        while let Some((page, contained)) = stack.pop() {
            self.with_view(page, |node| {
                if node.is_leaf() {
                    for i in 0..node.len() {
                        let rect = node.rect(i);
                        if contained || query.contains_rect(&rect) {
                            out.push((rect, node.payload(i)));
                        }
                    }
                } else {
                    for i in 0..node.len() {
                        let rect = node.rect(i);
                        if contained || query.contains_rect(&rect) {
                            stack.push((node.child_page(i), true));
                        } else if rect.intersects(query) {
                            stack.push((node.child_page(i), false));
                        }
                    }
                }
            })?;
        }
        Ok(out)
    }

    /// All entries whose rectangle fully **encloses** `query` (enclosure
    /// query: "which zoning polygons cover this parcel?"). Only subtrees
    /// whose MBR contains the whole query can hold an enclosing entry.
    pub fn query_enclosing(&self, query: &Rect<D>) -> Result<Vec<(Rect<D>, u64)>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            self.with_view(page, |node| {
                for i in 0..node.len() {
                    let rect = node.rect(i);
                    if rect.contains_rect(query) {
                        if node.is_leaf() {
                            out.push((rect, node.payload(i)));
                        } else {
                            stack.push(node.child_page(i));
                        }
                    }
                }
            })?;
        }
        Ok(out)
    }

    /// The `k` data entries nearest to `point` (by MBR distance),
    /// nearest first. Best-first (Hjaltason–Samet) traversal — an
    /// extension beyond the paper's intersection queries.
    pub fn nearest(&self, point: &Point<D>, k: usize) -> Result<Vec<(Rect<D>, u64, f64)>> {
        #[derive(PartialEq)]
        enum Item<const D: usize> {
            Node(PageId),
            Data(Rect<D>, u64),
        }
        struct Queued<const D: usize>(f64, Item<D>);
        impl<const D: usize> PartialEq for Queued<D> {
            fn eq(&self, o: &Self) -> bool {
                self.0 == o.0
            }
        }
        impl<const D: usize> Eq for Queued<D> {}
        impl<const D: usize> PartialOrd for Queued<D> {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl<const D: usize> Ord for Queued<D> {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                // Reverse: BinaryHeap is a max-heap, we want nearest first.
                geom::total_cmp_f64(o.0, self.0)
            }
        }

        let mut out = Vec::with_capacity(k);
        if k == 0 || self.is_empty() {
            return Ok(out);
        }
        let mut heap: BinaryHeap<Queued<D>> = BinaryHeap::new();
        heap.push(Queued(0.0, Item::Node(self.root)));
        while let Some(Queued(dist, item)) = heap.pop() {
            match item {
                Item::Data(rect, id) => {
                    out.push((rect, id, dist.sqrt()));
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(page) => {
                    self.with_view(page, |node| {
                        for i in 0..node.len() {
                            let rect = node.rect(i);
                            let d = rect.min_dist2(point);
                            let item = if node.is_leaf() {
                                Item::Data(rect, node.payload(i))
                            } else {
                                Item::Node(node.child_page(i))
                            };
                            heap.push(Queued(d, item));
                        }
                    })?;
                }
            }
        }
        Ok(out)
    }

    // ---- traversal ----------------------------------------------------

    /// Visit every node, parents before children. The callback receives
    /// `(page, node)` with the node fully decoded — the convenient owned
    /// API; statistics walks that only need a read-only look use
    /// [`visit_views`](Self::visit_views).
    pub fn visit_nodes(&self, visit: &mut impl FnMut(PageId, &Node<D>)) -> Result<()> {
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            if !node.is_leaf() {
                for e in &node.entries {
                    stack.push(e.child_page());
                }
            }
            visit(page, &node);
        }
        Ok(())
    }

    /// Visit every node, parents before children, through zero-copy
    /// views — no `Vec<Entry>` is materialized per node. A shared frame
    /// lock is held during each callback, so `visit` must not touch the
    /// pool.
    pub fn visit_views(
        &self,
        visit: &mut impl FnMut(PageId, &codec::NodeView<'_, D>),
    ) -> Result<()> {
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            self.with_view(page, |node| {
                if !node.is_leaf() {
                    for i in 0..node.len() {
                        stack.push(node.child_page(i));
                    }
                }
                visit(page, node);
            })?;
        }
        Ok(())
    }

    /// MBRs of all nodes at `level` (0 = leaves). Used for the paper's
    /// Figures 2–4 (leaf MBR plots) and the area/perimeter tables.
    pub fn level_mbrs(&self, level: u32) -> Result<Vec<Rect<D>>> {
        let mut out = Vec::new();
        self.visit_views(&mut |_, node| {
            if node.level() == level {
                out.push(node.mbr());
            }
        })?;
        Ok(out)
    }

    /// Every leaf data entry in the tree.
    pub fn all_entries(&self) -> Result<Vec<(Rect<D>, u64)>> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.visit_views(&mut |_, node| {
            if node.is_leaf() {
                out.extend(node.entries().map(|e| (e.rect, e.payload)));
            }
        })?;
        Ok(out)
    }

    /// Total number of node pages (all levels).
    pub fn node_count(&self) -> Result<u64> {
        let mut n = 0;
        self.visit_views(&mut |_, _| n += 1)?;
        Ok(n)
    }

    /// Pin the top `levels` levels of the tree (1 = the root only) into
    /// the buffer pool, returning the pinned pages. The §3 alternative
    /// buffering policy: "pin the root and some number of the first few
    /// R-tree levels and then use an LRU scheme for the remaining nodes."
    ///
    /// The caller must [`unpin_pages`](Self::unpin_pages) before clearing
    /// or resizing the pool. Fails with `AllFramesPinned` if the pinned
    /// set would not leave a free frame.
    pub fn pin_levels(&self, levels: u32) -> Result<Vec<PageId>> {
        let mut pinned = Vec::new();
        if let Err(e) = self.pin_levels_inner(levels, &mut pinned) {
            // A mid-traversal failure must release every pin already
            // taken — the caller gets an Err, not the list.
            self.unpin_pages(&pinned);
            return Err(e);
        }
        Ok(pinned)
    }

    fn pin_levels_inner(&self, levels: u32, pinned: &mut Vec<PageId>) -> Result<()> {
        let cutoff = self.height.saturating_sub(levels);
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            if node.level < cutoff {
                continue;
            }
            self.store.pool().pin(page)?;
            pinned.push(page);
            if !node.is_leaf() && node.level > cutoff {
                for e in &node.entries {
                    stack.push(e.child_page());
                }
            }
        }
        Ok(())
    }

    /// Release pins taken by [`pin_levels`](Self::pin_levels).
    pub fn unpin_pages(&self, pages: &[PageId]) {
        for &p in pages {
            self.store.pool().unpin(p);
        }
    }

    // ---- validation ---------------------------------------------------

    /// Check the structural invariants:
    ///
    /// 1. every child of a level-`l` node is at level `l − 1`;
    /// 2. every internal entry's rectangle is exactly the MBR of its
    ///    child's entries (tightness);
    /// 3. no node exceeds the capacity maximum, and (when
    ///    `enforce_min_fill`) every non-root node has at least the
    ///    capacity minimum — packed trees legitimately violate the
    ///    minimum in their final node per level, so it is optional;
    /// 4. the recorded length equals the number of leaf entries;
    /// 5. the recorded height equals the root's level + 1;
    /// 6. no page is reachable twice (the "tree" is a tree).
    pub fn validate(&self, enforce_min_fill: bool) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        let mut leaf_entries = 0u64;
        let root_level = self.with_view(self.root, |node| node.level())?;
        if root_level + 1 != self.height {
            return Err(RTreeError::Invalid(format!(
                "height {} but root level {}",
                self.height, root_level
            )));
        }
        // Each frame carries what the parent recorded about the child
        // (MBR and identity), so the child is checked when it is popped —
        // one pool request per node, never a nested read while the
        // parent's frame is borrowed.
        struct Pending<const D: usize> {
            page: PageId,
            expected_mbr: Option<Rect<D>>,
            parent: Option<(PageId, u32)>,
        }
        let mut stack: Vec<Pending<D>> = vec![Pending {
            page: self.root,
            expected_mbr: None,
            parent: None,
        }];
        while let Some(Pending {
            page,
            expected_mbr,
            parent,
        }) = stack.pop()
        {
            if !seen.insert(page) {
                return Err(RTreeError::Invalid(format!("{page} reachable twice")));
            }
            let is_root = page == self.root;
            let cap = self.cap;
            self.with_view(page, |node| {
                if let Some((parent_page, parent_level)) = parent {
                    if node.level() + 1 != parent_level {
                        return Err(RTreeError::Invalid(format!(
                            "{parent_page} (level {parent_level}) points at {page} (level {})",
                            node.level()
                        )));
                    }
                }
                if node.len() > cap.max() {
                    return Err(RTreeError::Invalid(format!(
                        "{page} holds {} entries, max {}",
                        node.len(),
                        cap.max()
                    )));
                }
                if enforce_min_fill && !is_root && node.len() < cap.min() {
                    return Err(RTreeError::Invalid(format!(
                        "{page} holds {} entries, min {}",
                        node.len(),
                        cap.min()
                    )));
                }
                if is_root && !node.is_leaf() && node.len() < 2 {
                    return Err(RTreeError::Invalid(
                        "internal root with fewer than 2 children".into(),
                    ));
                }
                if let Some(expected) = expected_mbr {
                    let actual = node.mbr();
                    if actual != expected {
                        return Err(RTreeError::Invalid(format!(
                            "{page}: parent records MBR {expected}, node is {actual}"
                        )));
                    }
                }
                if node.is_leaf() {
                    leaf_entries += node.len() as u64;
                } else {
                    for i in 0..node.len() {
                        stack.push(Pending {
                            page: node.child_page(i),
                            expected_mbr: Some(node.rect(i)),
                            parent: Some((page, node.level())),
                        });
                    }
                }
                Ok(())
            })??;
        }
        if leaf_entries != self.len {
            return Err(RTreeError::Invalid(format!(
                "recorded len {} but found {leaf_entries} leaf entries",
                self.len
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::MemDisk;

    fn new_tree(cap: usize) -> RTree<2> {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk, 64));
        RTree::create(pool, NodeCapacity::new(cap).unwrap()).unwrap()
    }

    #[test]
    fn empty_tree() {
        let t = new_tree(4);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.root_mbr().unwrap().is_empty());
        assert!(t.query_region(&Rect::unit()).unwrap().is_empty());
        assert!(t.nearest(&Point::new([0.5, 0.5]), 3).unwrap().is_empty());
        t.validate(true).unwrap();
    }

    #[test]
    fn capacity_exceeding_page_rejected() {
        let disk = Arc::new(MemDisk::new(256));
        let pool = Arc::new(BufferPool::new(disk, 4));
        // 256-byte pages hold (256-24)/40 = 5 two-dimensional entries.
        let err = RTree::<2>::create(pool, NodeCapacity::new(100).unwrap()).unwrap_err();
        assert!(matches!(err, RTreeError::CapacityTooLarge { max: 5, .. }));
    }

    #[test]
    fn persist_and_reopen_empty() {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk.clone() as Arc<dyn storage::Disk>, 16));
        let mut t = RTree::<2>::create(pool, NodeCapacity::new(10).unwrap()).unwrap();
        t.persist().unwrap();
        let pool2 = Arc::new(BufferPool::new(disk as Arc<dyn storage::Disk>, 16));
        let t2 = RTree::<2>::open(pool2).unwrap();
        assert_eq!(t2.len(), 0);
        assert_eq!(t2.height(), 1);
        assert_eq!(t2.capacity().max(), 10);
    }

    #[test]
    fn open_wrong_dimension_fails() {
        let disk = Arc::new(MemDisk::default_size());
        let pool = Arc::new(BufferPool::new(disk.clone() as Arc<dyn storage::Disk>, 16));
        let mut t = RTree::<2>::create(pool, NodeCapacity::new(10).unwrap()).unwrap();
        t.persist().unwrap();
        let pool2 = Arc::new(BufferPool::new(disk as Arc<dyn storage::Disk>, 16));
        assert!(RTree::<3>::open(pool2).is_err());
    }
}
