//! Parallel query serving over one shared index backend.
//!
//! The paper's experiments stream queries one at a time and count buffer
//! misses; its future work points at "a parallel shared-nothing
//! platform". This module is the serving half of that: a batch of
//! intersection queries fanned across a fixed-size pool of scoped worker
//! threads, all reading one `&dyn SpatialIndex` — the paged tree through
//! its sharded buffer pool, the flat tier straight off the mmap, or an
//! LSM tree across all its components. Queries take `&self` and each
//! backend is internally synchronized, so no cloning, snapshotting, or
//! per-thread state is needed.
//!
//! Work distribution is a single atomic cursor over the batch (the same
//! self-balancing scheme `StrPacker::with_threads` uses for packing):
//! each worker claims the next unclaimed query, so a slow query — one
//! with many buffer misses — never stalls the queries behind it on the
//! same worker.
//!
//! The report pairs every query's result (in input order) with the
//! batch-wide [`BufferStats`] delta, keeping the paper's measurement
//! discipline: *disk accesses* for a batch are pool misses during the
//! batch, which stay exact under concurrency because coalesced duplicate
//! reads count as hits for the waiters. Backends without a buffer pool
//! (flat mmap, memtables) report a zero delta — they perform no paged
//! reads, so zero is the true count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use geom::{Point, Rect};
use obs::{Histogram, HistogramSnapshot, LazyCounter, LazyHistogram};
use parking_lot::Mutex;
use storage::BufferStats;

use crate::index::SpatialIndex;
use crate::Result;

/// Mirrors of the batch-local accounting into the global registry, so a
/// process-wide snapshot sees executor latency without holding on to
/// every [`BatchReport`].
static EXEC_BATCHES: LazyCounter = LazyCounter::new("executor.batches");
static EXEC_QUERY_NS: LazyHistogram = LazyHistogram::new("executor.query_ns");

/// One query in a batch.
#[derive(Debug, Clone)]
pub enum BatchQuery<const D: usize> {
    /// All items whose rectangle intersects the query window (§2.1).
    Region(Rect<D>),
    /// All items whose rectangle contains the point.
    Point(Point<D>),
}

/// Result of one executed batch: per-query hit lists in input order plus
/// batch-wide cost accounting.
#[derive(Debug)]
pub struct BatchReport<const D: usize> {
    /// `results[i]` is the hit list of `queries[i]`, each hit a
    /// `(rectangle, item id)` pair in the tree's traversal order.
    pub results: Vec<Vec<(Rect<D>, u64)>>,
    /// Buffer-pool counter movement attributable to this batch
    /// (`stats_after.since(stats_before)`); `misses` is the paper's
    /// "disk accesses" for the whole batch.
    pub stats: BufferStats,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Worker threads actually used.
    pub threads: usize,
    /// Per-query latency distribution in nanoseconds, merged across
    /// workers. Always collected: the cost is two clock reads per query,
    /// dwarfed by the traversal itself.
    pub latency: HistogramSnapshot,
    /// Queries served by each worker (length == `threads`). Uneven
    /// counts are expected — the atomic cursor balances *time*, not
    /// query count — but a worker stuck at 0 on a large batch means a
    /// scheduling problem.
    pub per_thread_queries: Vec<u64>,
}

impl<const D: usize> BatchReport<D> {
    /// Queries served per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.results.len() as f64 / secs
        }
    }

    /// Total hits across every query in the batch.
    pub fn total_matches(&self) -> u64 {
        self.results.iter().map(|r| r.len() as u64).sum()
    }
}

/// A batch query engine over one shared [`SpatialIndex`] backend.
///
/// Holds only a shared borrow: the executor can be created per batch for
/// free, and several executors may serve the same index. Any concrete
/// backend reference coerces at the call site, so
/// `QueryExecutor::new(&tree)` keeps working unchanged.
///
/// ```
/// use std::sync::Arc;
/// use geom::Rect;
/// use rtree::{BatchQuery, BulkLoader, Entry, NodeCapacity, QueryExecutor};
/// use storage::{BufferPool, MemDisk};
///
/// let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 8));
/// let entries: Vec<Entry<2>> = (0..100)
///     .map(|i| {
///         let x = (i % 10) as f64;
///         let y = (i / 10) as f64;
///         Entry::data(Rect::new([x, y], [x + 0.5, y + 0.5]), i as u64)
///     })
///     .collect();
/// let tree = BulkLoader::new(NodeCapacity::new(16).unwrap())
///     .load(pool, entries, &mut |es: &mut Vec<Entry<2>>, _| {
///         es.sort_by(|a, b| a.rect.lo(0).total_cmp(&b.rect.lo(0)));
///     })
///     .unwrap();
///
/// let queries = vec![
///     BatchQuery::Region(Rect::new([0.0, 0.0], [3.0, 3.0])),
///     BatchQuery::Point([5.2, 5.2].into()),
/// ];
/// let report = QueryExecutor::new(&tree).run_batch(&queries, 2).unwrap();
/// assert_eq!(report.results.len(), 2);
/// assert_eq!(report.results[0].len(), 16);
/// assert_eq!(report.results[1], vec![(Rect::new([5.0, 5.0], [5.5, 5.5]), 55)]);
/// ```
pub struct QueryExecutor<'t, const D: usize> {
    index: &'t dyn SpatialIndex<D>,
}

impl<'t, const D: usize> QueryExecutor<'t, D> {
    /// Serve queries from `index` (a paged tree, flat tree, memtable, or
    /// LSM tree).
    pub fn new(index: &'t dyn SpatialIndex<D>) -> Self {
        Self { index }
    }

    /// Run every query in `queries` across up to `threads` workers and
    /// collect the results in input order.
    ///
    /// `threads` is clamped to `1..=queries.len()`; with one thread the
    /// batch runs on the calling thread with no spawns, so a
    /// single-threaded batch is also the oracle for the concurrent one.
    /// The first query error aborts the batch (remaining queries may or
    /// may not have run); per-query error reporting isn't needed on a
    /// read path where every worker shares one tree and one pool — an
    /// I/O error for one worker is an I/O error for all of them.
    pub fn run_batch(&self, queries: &[BatchQuery<D>], threads: usize) -> Result<BatchReport<D>> {
        let threads = threads.clamp(1, queries.len().max(1));
        let before = self.index.buffer_stats().unwrap_or_default();
        let start = Instant::now();

        let _batch_span = obs::trace::span("executor.batch");
        // Captured before spawning so worker-side spans join the
        // batch's trace even though they run on other threads.
        let ctx = obs::trace::current();

        let mut results: Vec<Vec<(Rect<D>, u64)>> = Vec::new();
        let latency;
        let per_thread_queries;
        if threads == 1 {
            let hist = Histogram::new();
            for q in queries {
                let t0 = Instant::now();
                let qspan = obs::trace::span("executor.query");
                let hits = self.run_one(q)?;
                drop(qspan);
                results.push(hits);
                let ns = t0.elapsed().as_nanos() as u64;
                hist.record(ns);
                EXEC_QUERY_NS.record(ns);
            }
            latency = hist.snapshot();
            per_thread_queries = vec![queries.len() as u64];
        } else {
            results.resize(queries.len(), Vec::new());
            let cursor = AtomicUsize::new(0);
            let failure: Mutex<Option<crate::RTreeError>> = Mutex::new(None);
            let out = Mutex::new(&mut results);
            // Per-worker accounting merged once at worker exit, like the
            // result buffers: (merged latency, per-worker query counts).
            let accounting = Mutex::new((HistogramSnapshot::empty(), Vec::new()));
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        // Claim query slots until the batch is drained or
                        // some worker failed. Results are buffered
                        // locally and merged once per worker, so the
                        // output mutex is uncontended in steady state.
                        let _attached = ctx.attach();
                        let mut local: Vec<(usize, Vec<(Rect<D>, u64)>)> = Vec::new();
                        let hist = Histogram::new();
                        let mut served = 0u64;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() || failure.lock().is_some() {
                                break;
                            }
                            let t0 = Instant::now();
                            let _qspan = obs::trace::span("executor.query");
                            match self.run_one(&queries[i]) {
                                Ok(hits) => {
                                    let ns = t0.elapsed().as_nanos() as u64;
                                    hist.record(ns);
                                    EXEC_QUERY_NS.record(ns);
                                    served += 1;
                                    local.push((i, hits));
                                }
                                Err(e) => {
                                    *failure.lock() = Some(e);
                                    break;
                                }
                            }
                        }
                        let mut out = out.lock();
                        for (i, hits) in local {
                            out[i] = hits;
                        }
                        let mut acc = accounting.lock();
                        acc.0.merge(&hist.snapshot());
                        acc.1.push(served);
                    });
                }
            });
            if let Some(e) = failure.into_inner() {
                return Err(e);
            }
            (latency, per_thread_queries) = accounting.into_inner();
        }

        EXEC_BATCHES.inc();
        Ok(BatchReport {
            results,
            stats: self
                .index
                .buffer_stats()
                .unwrap_or_default()
                .since(&before),
            elapsed: start.elapsed(),
            threads,
            latency,
            per_thread_queries,
        })
    }

    fn run_one(&self, query: &BatchQuery<D>) -> Result<Vec<(Rect<D>, u64)>> {
        match query {
            BatchQuery::Region(rect) => self.index.query(rect),
            BatchQuery::Point(point) => self.index.query_point(point),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BulkLoader, Entry, NodeCapacity, RTree};
    use std::sync::Arc;
    use storage::{BufferPool, Disk, MemDisk};

    fn grid_tree(n: u64) -> RTree<2> {
        let pool = Arc::new(BufferPool::for_threads(
            Arc::new(MemDisk::default_size()) as Arc<dyn Disk>,
            32,
            4,
        ));
        let side = (n as f64).sqrt().ceil() as u64;
        let entries: Vec<Entry<2>> = (0..n)
            .map(|i| {
                let x = (i % side) as f64;
                let y = (i / side) as f64;
                Entry::data(Rect::new([x, y], [x + 0.5, y + 0.5]), i)
            })
            .collect();
        BulkLoader::new(NodeCapacity::new(16).unwrap())
            .load(pool, entries, &mut |es: &mut Vec<Entry<2>>, _| {
                es.sort_by(|a, b| {
                    a.rect
                        .lo(0)
                        .total_cmp(&b.rect.lo(0))
                        .then(a.rect.lo(1).total_cmp(&b.rect.lo(1)))
                });
            })
            .unwrap()
    }

    fn mixed_queries(n: usize) -> Vec<BatchQuery<2>> {
        (0..n)
            .map(|i| {
                let c = (i % 50) as f64;
                if i % 3 == 0 {
                    BatchQuery::Point([c + 0.25, c + 0.25].into())
                } else {
                    BatchQuery::Region(Rect::new([c, c], [c + 4.0, c + 4.0]))
                }
            })
            .collect()
    }

    #[test]
    fn parallel_batch_matches_single_threaded_oracle() {
        let tree = grid_tree(2_500);
        let queries = mixed_queries(64);
        let exec = QueryExecutor::new(&tree);
        let oracle = exec.run_batch(&queries, 1).unwrap();
        for threads in [2, 4, 8] {
            let par = exec.run_batch(&queries, threads).unwrap();
            assert_eq!(par.results, oracle.results, "{threads}-thread mismatch");
            assert_eq!(par.threads, threads);
        }
    }

    #[test]
    fn report_accounts_stats_and_throughput() {
        let tree = grid_tree(2_500);
        let queries = mixed_queries(32);
        let report = QueryExecutor::new(&tree).run_batch(&queries, 4).unwrap();
        assert_eq!(report.results.len(), 32);
        assert!(report.total_matches() > 0);
        // Every node visit is a pool request; a 32-query batch cannot be
        // free.
        assert!(report.stats.hits + report.stats.misses > 0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn report_carries_latency_histogram_and_per_thread_counts() {
        let tree = grid_tree(2_500);
        let queries = mixed_queries(48);
        for threads in [1usize, 4] {
            let report = QueryExecutor::new(&tree)
                .run_batch(&queries, threads)
                .unwrap();
            assert_eq!(
                report.latency.count(),
                48,
                "{threads}: one sample per query"
            );
            assert_eq!(report.per_thread_queries.len(), threads);
            assert_eq!(
                report.per_thread_queries.iter().sum::<u64>(),
                48,
                "{threads}: every query attributed to exactly one worker"
            );
            // Percentiles are ordered and bounded by the recorded max.
            let (p50, p99) = (
                report.latency.percentile(0.50),
                report.latency.percentile(0.99),
            );
            assert!(p50 <= p99 && p99 <= report.latency.max());
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        let tree = grid_tree(100);
        let queries = mixed_queries(2);
        let report = QueryExecutor::new(&tree).run_batch(&queries, 64).unwrap();
        assert_eq!(report.threads, 2);
        let empty = QueryExecutor::new(&tree).run_batch(&[], 8).unwrap();
        assert_eq!(empty.results.len(), 0);
        assert_eq!(empty.threads, 1);
    }
}
