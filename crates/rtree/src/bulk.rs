//! Bottom-up bulk loading — the "General Algorithm" of paper §2.2.
//!
//! > 1. Preprocess the data file so that the r rectangles are ordered in
//! >    ⌈r/n⌉ consecutive groups of n rectangles […]
//! > 2. Load the ⌈r/n⌉ groups of rectangles into pages and output the
//! >    (MBR, page-number) for each leaf level page into a temporary
//! >    file. The page-numbers are used as the child pointers in the
//! >    nodes of the next higher level.
//! > 3. Recursively pack these MBRs into nodes at the next level,
//! >    proceeding upwards, until the root node is created.
//!
//! "The three algorithms differ only in how the rectangles are ordered at
//! each level" — so the loader takes the ordering as a callback, invoked
//! once per level, and the packing crates supply NX / HS / STR orderings.

use std::sync::Arc;

use geom::Rect;
use storage::{BufferPool, Disk, PageId, SequentialPageWriter};

use crate::codec::RectCodec;
use crate::store::{NodeStore, DEFAULT_TREE};
use crate::{Entry, NodeCapacity, RTree, RTreeError, Result};

/// Bottom-up loader producing a packed [`RTree`].
#[derive(Debug, Clone, Copy)]
pub struct BulkLoader {
    cap: NodeCapacity,
}

impl BulkLoader {
    /// Loader for trees with the given node capacity.
    pub fn new(cap: NodeCapacity) -> Self {
        Self { cap }
    }

    /// Node capacity used for every level.
    pub fn capacity(&self) -> NodeCapacity {
        self.cap
    }

    /// Build a packed tree from `entries` on `pool`.
    ///
    /// `order` is called once per level, lowest first, with the entries
    /// that will populate that level (data entries for level 0, child
    /// MBR entries above); it must permute the slice into packing order.
    /// Consecutive runs of `capacity.max()` entries then become nodes —
    /// every node full except possibly the last, which is the near-100%
    /// space utilization that motivates packing.
    ///
    /// Freshly packed pages stream straight to disk in sequential
    /// batches ([`SequentialPageWriter`]), bypassing the buffer pool:
    /// a build writes every page exactly once and re-reads none, so
    /// routing it through the LRU pool would only evict whatever was hot
    /// before the build. Disk write counters still advance one per page,
    /// so build I/O remains fully accounted. Each node is encoded
    /// directly from its slice of the ordered run — no per-node `Node`
    /// or entry copy is materialized.
    ///
    /// An empty disk is formatted as a v2 file and the tree is cataloged
    /// as [`DEFAULT_TREE`]; a disk already holding a v2 file gains
    /// another catalog entry (see [`load_into`](Self::load_into)).
    pub fn load<const D: usize>(
        &self,
        pool: Arc<BufferPool>,
        entries: Vec<Entry<D>>,
        order: &mut dyn FnMut(&mut Vec<Entry<D>>, u32),
    ) -> Result<RTree<D>> {
        self.load_into(pool, DEFAULT_TREE, entries, order)
    }

    /// [`load`](Self::load) into a named catalog entry, so several
    /// packed trees can share the pages of one v2 file. Packed pages
    /// still stream to the disk tail in sequential batches — bulk loads
    /// deliberately bypass the free list to stay contiguous.
    pub fn load_into<const D: usize>(
        &self,
        pool: Arc<BufferPool>,
        name: &str,
        entries: Vec<Entry<D>>,
        order: &mut dyn FnMut(&mut Vec<Entry<D>>, u32),
    ) -> Result<RTree<D>> {
        if entries.is_empty() {
            return Err(RTreeError::EmptyLoad);
        }
        let max = crate::codec::max_capacity::<D>(pool.page_size());
        if self.cap.max() > max {
            return Err(RTreeError::CapacityTooLarge {
                requested: self.cap.max(),
                max,
            });
        }
        let store = NodeStore::<RectCodec<D>>::create(pool.clone(), name)?;

        let disk = pool.disk().clone();
        let mut writer = SequentialPageWriter::new(disk.as_ref());
        let n = self.cap.max();
        let total = entries.len() as u64;
        let mut level: u32 = 0;
        let mut current = entries;
        loop {
            order(&mut current, level);
            let mut next: Vec<Entry<D>> = Vec::with_capacity(current.len() / n + 1);
            for group in current.chunks(n) {
                let (page, ()) =
                    writer.append(|buf| crate::codec::encode_entries(level, group, buf))?;
                next.push(Entry::child(
                    Rect::union_all(group.iter().map(|e| &e.rect)),
                    page,
                ));
            }
            if next.len() == 1 {
                writer.flush()?;
                let root = next[0].child_page();
                let mut tree = RTree::from_parts(store, self.cap, root, level + 1, total);
                tree.persist()?;
                return Ok(tree);
            }
            current = next;
            level += 1;
        }
    }
}

impl BulkLoader {
    /// Streaming variant of [`load`](Self::load): leaf entries arrive
    /// from an iterator **already in packing order** (e.g. the output of
    /// an external sort), so the leaf level never needs to fit in
    /// memory. Upper levels are 1/capacity the size of the data and are
    /// packed in memory with `order_upper`, which sees levels ≥ 1 only.
    pub fn load_streamed<const D: usize, I>(
        &self,
        pool: Arc<BufferPool>,
        leaf_entries: I,
        order_upper: &mut dyn FnMut(&mut Vec<Entry<D>>, u32),
    ) -> Result<RTree<D>>
    where
        I: IntoIterator<Item = Entry<D>>,
    {
        self.load_streamed_into(pool, DEFAULT_TREE, leaf_entries, order_upper)
    }

    /// [`load_streamed`](Self::load_streamed) into a named catalog entry.
    pub fn load_streamed_into<const D: usize, I>(
        &self,
        pool: Arc<BufferPool>,
        name: &str,
        leaf_entries: I,
        order_upper: &mut dyn FnMut(&mut Vec<Entry<D>>, u32),
    ) -> Result<RTree<D>>
    where
        I: IntoIterator<Item = Entry<D>>,
    {
        let max = crate::codec::max_capacity::<D>(pool.page_size());
        if self.cap.max() > max {
            return Err(RTreeError::CapacityTooLarge {
                requested: self.cap.max(),
                max,
            });
        }
        let store = NodeStore::<RectCodec<D>>::create(pool.clone(), name)?;

        let disk = pool.disk().clone();
        let mut writer = SequentialPageWriter::new(disk.as_ref());
        let n = self.cap.max();
        let mut total: u64 = 0;
        let mut group: Vec<Entry<D>> = Vec::with_capacity(n);
        let mut next: Vec<Entry<D>> = Vec::new();
        for entry in leaf_entries {
            total += 1;
            group.push(entry);
            if group.len() == n {
                next.push(flush_leaf(&mut writer, &mut group)?);
            }
        }
        if !group.is_empty() {
            next.push(flush_leaf(&mut writer, &mut group)?);
        }
        if next.is_empty() {
            return Err(RTreeError::EmptyLoad);
        }

        stitch_upper(store, &mut writer, self.cap, total, next, order_upper)
    }
}

/// Pack the upper levels from the level-1 entries (one per leaf, already
/// in leaf order) up to the root, then seal the tree. Shared by the
/// streaming loader and [`ParallelLoad::finish`] so both produce the
/// same pages in the same order.
fn stitch_upper<const D: usize>(
    store: NodeStore<RectCodec<D>>,
    writer: &mut SequentialPageWriter<'_>,
    cap: NodeCapacity,
    total: u64,
    mut current: Vec<Entry<D>>,
    order_upper: &mut dyn FnMut(&mut Vec<Entry<D>>, u32),
) -> Result<RTree<D>> {
    // Upper levels: tiny (total / n^level entries), packed in memory.
    let n = cap.max();
    let mut level: u32 = 1;
    loop {
        if current.len() == 1 {
            writer.flush()?;
            let root = current[0].child_page();
            let mut tree = RTree::from_parts(store, cap, root, level, total);
            tree.persist()?;
            return Ok(tree);
        }
        order_upper(&mut current, level);
        let mut next = Vec::with_capacity(current.len() / n + 1);
        for chunk in current.chunks(n) {
            let (page, ()) =
                writer.append(|buf| crate::codec::encode_entries(level, chunk, buf))?;
            next.push(Entry::child(
                Rect::union_all(chunk.iter().map(|e| &e.rect)),
                page,
            ));
        }
        current = next;
        level += 1;
    }
}

impl BulkLoader {
    /// Begin a bulk load whose leaf level is written by several workers
    /// in parallel.
    ///
    /// The number of leaves must be known up front (STR fixes it the
    /// moment the global sort finishes: ⌈r/n⌉). The loader creates the
    /// catalog entry and reserves one contiguous page run for the whole
    /// leaf level, so every worker can write its slice of leaves with
    /// pure page arithmetic — no allocator traffic, no coordination —
    /// via [`ParallelLoad::leaf_writer`]. Because the reservation
    /// happens where the sequential loaders would have written their
    /// first leaf, the finished file is byte-identical to a
    /// single-threaded [`load_streamed`](Self::load_streamed).
    pub fn begin_parallel<const D: usize>(
        &self,
        pool: Arc<BufferPool>,
        name: &str,
        leaf_count: u64,
    ) -> Result<ParallelLoad<D>> {
        if leaf_count == 0 {
            return Err(RTreeError::EmptyLoad);
        }
        let max = crate::codec::max_capacity::<D>(pool.page_size());
        if self.cap.max() > max {
            return Err(RTreeError::CapacityTooLarge {
                requested: self.cap.max(),
                max,
            });
        }
        let store = NodeStore::<RectCodec<D>>::create(pool.clone(), name)?;
        let first_leaf = pool.disk().allocate_run(leaf_count)?;
        Ok(ParallelLoad {
            store,
            cap: self.cap,
            first_leaf,
            leaf_count,
        })
    }
}

/// An in-progress parallel bulk load: the leaf page range is reserved,
/// workers fill disjoint slices of it, and [`finish`](Self::finish)
/// stitches the upper levels sequentially.
pub struct ParallelLoad<const D: usize> {
    store: NodeStore<RectCodec<D>>,
    cap: NodeCapacity,
    first_leaf: PageId,
    leaf_count: u64,
}

impl<const D: usize> ParallelLoad<D> {
    /// First page of the reserved leaf range.
    pub fn first_leaf(&self) -> PageId {
        self.first_leaf
    }

    /// Number of reserved leaf pages.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// Node capacity of the tree being built.
    pub fn capacity(&self) -> NodeCapacity {
        self.cap
    }

    /// The underlying disk — what workers write leaves through.
    pub fn disk(&self) -> Arc<dyn Disk> {
        self.store.pool().disk().clone()
    }

    /// A writer for `count` leaves starting `offset` leaves into the
    /// reserved range. Writers are independent and `Send`: hand one to
    /// each worker for its contiguous slice.
    ///
    /// # Panics
    /// Panics if the slice exceeds the reserved range.
    pub fn leaf_writer(&self, offset: u64, count: u64) -> LeafRangeWriter<D> {
        assert!(
            offset + count <= self.leaf_count,
            "leaf slice [{offset}, {}) exceeds reservation of {}",
            offset + count,
            self.leaf_count
        );
        LeafRangeWriter::new(self.disk(), PageId(self.first_leaf.index() + offset), count)
    }

    /// Seal the tree: pack upper levels from the per-leaf parent entries
    /// (in leaf order — workers' results concatenated in slice order)
    /// and persist the meta. `total` is the number of data entries.
    pub fn finish(
        self,
        total: u64,
        level1: Vec<Entry<D>>,
        order_upper: &mut dyn FnMut(&mut Vec<Entry<D>>, u32),
    ) -> Result<RTree<D>> {
        assert_eq!(
            level1.len() as u64,
            self.leaf_count,
            "one parent entry per reserved leaf"
        );
        let disk = self.disk();
        let mut writer = SequentialPageWriter::new(disk.as_ref());
        stitch_upper(
            self.store,
            &mut writer,
            self.cap,
            total,
            level1,
            order_upper,
        )
    }
}

/// Batched writer for a preassigned contiguous range of leaf pages.
/// Encodes level-0 nodes into an in-memory batch and flushes with one
/// positioned multi-page write, mirroring [`SequentialPageWriter`] but
/// over pages reserved before the writer existed — which is what makes
/// it safe to drive from several threads at once (each on its own
/// disjoint range).
pub struct LeafRangeWriter<const D: usize> {
    disk: Arc<dyn Disk>,
    page_size: usize,
    next: u64,
    end: u64,
    batch: Vec<u8>,
    batch_pages: usize,
    in_batch: usize,
}

/// Pages per batched leaf flush.
const LEAF_BATCH_PAGES: usize = 64;

impl<const D: usize> LeafRangeWriter<D> {
    fn new(disk: Arc<dyn Disk>, first: PageId, count: u64) -> Self {
        let page_size = disk.page_size();
        let batch_pages = LEAF_BATCH_PAGES.min(count.max(1) as usize);
        Self {
            disk,
            page_size,
            next: first.index(),
            end: first.index() + count,
            batch: vec![0u8; page_size * batch_pages],
            batch_pages,
            in_batch: 0,
        }
    }

    /// Encode one leaf node from `entries` and return its parent entry.
    ///
    /// # Panics
    /// Panics if the range is already full.
    pub fn write_leaf(&mut self, entries: &[Entry<D>]) -> Result<Entry<D>> {
        assert!(
            self.next + (self.in_batch as u64) < self.end,
            "leaf range overflow"
        );
        let base = self.in_batch * self.page_size;
        let page_buf = &mut self.batch[base..base + self.page_size];
        page_buf.fill(0);
        crate::codec::encode_entries(0, entries, page_buf);
        let page = PageId(self.next + self.in_batch as u64);
        self.in_batch += 1;
        if self.in_batch == self.batch_pages {
            self.flush()?;
        }
        Ok(Entry::child(
            Rect::union_all(entries.iter().map(|e| &e.rect)),
            page,
        ))
    }

    /// Write out any buffered pages.
    pub fn flush(&mut self) -> Result<()> {
        if self.in_batch == 0 {
            return Ok(());
        }
        self.disk.write_pages(
            PageId(self.next),
            &self.batch[..self.in_batch * self.page_size],
        )?;
        self.next += self.in_batch as u64;
        self.in_batch = 0;
        Ok(())
    }

    /// Flush and verify the whole range was written.
    pub fn finish(mut self) -> Result<()> {
        self.flush()?;
        assert_eq!(self.next, self.end, "leaf range not fully written");
        Ok(())
    }
}

/// Stage one full leaf from `group` and return its parent entry. The
/// group buffer is cleared for reuse, not dropped — the streaming loader
/// allocates nothing per leaf.
fn flush_leaf<const D: usize>(
    writer: &mut SequentialPageWriter<'_>,
    group: &mut Vec<Entry<D>>,
) -> Result<Entry<D>> {
    let mbr = Rect::union_all(group.iter().map(|e| &e.rect));
    let (page, ()) = writer.append(|buf| crate::codec::encode_entries(0, group, buf))?;
    group.clear();
    Ok(Entry::child(mbr, page))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Point;
    use std::sync::Arc;
    use storage::MemDisk;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 256))
    }

    /// The simplest ordering: leave entries as given at every level.
    fn identity(_: &mut Vec<Entry<2>>, _: u32) {}

    fn grid_entries(n: usize) -> Vec<Entry<2>> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64 / 100.0;
                let y = (i / 100) as f64 / 100.0;
                Entry::data(Rect::new([x, y], [x + 0.005, y + 0.005]), i as u64)
            })
            .collect()
    }

    #[test]
    fn rejects_empty() {
        let loader = BulkLoader::new(NodeCapacity::new(4).unwrap());
        let err = loader
            .load::<2>(pool(), Vec::new(), &mut identity)
            .unwrap_err();
        assert!(matches!(err, RTreeError::EmptyLoad));
    }

    #[test]
    fn single_entry_tree() {
        let loader = BulkLoader::new(NodeCapacity::new(4).unwrap());
        let t = loader.load(pool(), grid_entries(1), &mut identity).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.validate(false).unwrap();
    }

    #[test]
    fn exactly_one_full_node() {
        let loader = BulkLoader::new(NodeCapacity::new(4).unwrap());
        let t = loader.load(pool(), grid_entries(4), &mut identity).unwrap();
        assert_eq!(t.height(), 1);
        t.validate(false).unwrap();
    }

    #[test]
    fn one_more_than_a_node_makes_two_levels() {
        let loader = BulkLoader::new(NodeCapacity::new(4).unwrap());
        let t = loader.load(pool(), grid_entries(5), &mut identity).unwrap();
        assert_eq!(t.height(), 2);
        assert_eq!(t.len(), 5);
        t.validate(false).unwrap();
    }

    #[test]
    fn page_count_matches_packing_arithmetic() {
        // 1000 entries at capacity 10: 100 leaves, 10 internal, 1 root.
        let loader = BulkLoader::new(NodeCapacity::new(10).unwrap());
        let t = loader
            .load(pool(), grid_entries(1000), &mut identity)
            .unwrap();
        assert_eq!(t.height(), 3);
        assert_eq!(t.node_count().unwrap(), 111);
        t.validate(false).unwrap();
    }

    #[test]
    fn utilization_is_nearly_full() {
        // 1003 entries at capacity 10: all leaves full except the last.
        let loader = BulkLoader::new(NodeCapacity::new(10).unwrap());
        let t = loader
            .load(pool(), grid_entries(1003), &mut identity)
            .unwrap();
        let leaves = t.level_mbrs(0).unwrap();
        assert_eq!(leaves.len(), 101);
        t.validate(false).unwrap();
    }

    #[test]
    fn loaded_tree_answers_queries() {
        let loader = BulkLoader::new(NodeCapacity::new(16).unwrap());
        let entries = grid_entries(2000);
        let t = loader.load(pool(), entries.clone(), &mut identity).unwrap();
        let q = Rect::new([0.25, 0.05], [0.35, 0.12]);
        let mut expect: Vec<u64> = entries
            .iter()
            .filter(|e| e.rect.intersects(&q))
            .map(|e| e.payload)
            .collect();
        let mut got: Vec<u64> = t
            .query_region(&q)
            .unwrap()
            .iter()
            .map(|(_, id)| *id)
            .collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got);
    }

    #[test]
    fn order_callback_sees_every_level() {
        let loader = BulkLoader::new(NodeCapacity::new(10).unwrap());
        let mut levels = Vec::new();
        let mut order = |entries: &mut Vec<Entry<2>>, level: u32| {
            levels.push((level, entries.len()));
        };
        let t = loader.load(pool(), grid_entries(1000), &mut order).unwrap();
        assert_eq!(levels, vec![(0, 1000), (1, 100), (2, 10)]);
        drop(t);
    }

    #[test]
    fn ordering_is_respected() {
        // Sort by x at the leaf level; the first leaf must then hold the
        // 4 left-most rectangles.
        let loader = BulkLoader::new(NodeCapacity::new(4).unwrap());
        let mut entries = grid_entries(16);
        entries.reverse();
        let mut order = |es: &mut Vec<Entry<2>>, level: u32| {
            if level == 0 {
                es.sort_by(|a, b| a.rect.cmp_center(&b.rect, 0));
            }
        };
        let t = loader.load(pool(), entries, &mut order).unwrap();
        let first_leaf_hits = t
            .query_region(&Rect::new([0.0, 0.0], [0.031, 0.01]))
            .unwrap();
        assert_eq!(first_leaf_hits.len(), 4);
        t.validate(false).unwrap();
    }

    #[test]
    fn streamed_load_matches_batch_load() {
        let loader = BulkLoader::new(NodeCapacity::new(10).unwrap());
        let entries = grid_entries(1234);
        let batch = loader.load(pool(), entries.clone(), &mut identity).unwrap();
        let streamed = loader
            .load_streamed(pool(), entries, &mut |_, _| {})
            .unwrap();
        assert_eq!(batch.len(), streamed.len());
        assert_eq!(batch.height(), streamed.height());
        assert_eq!(
            batch.level_mbrs(0).unwrap(),
            streamed.level_mbrs(0).unwrap(),
            "same leaf structure"
        );
        streamed.validate(false).unwrap();
    }

    #[test]
    fn streamed_load_rejects_empty() {
        let loader = BulkLoader::new(NodeCapacity::new(4).unwrap());
        let err = loader
            .load_streamed::<2, _>(pool(), std::iter::empty(), &mut |_, _| {})
            .unwrap_err();
        assert!(matches!(err, RTreeError::EmptyLoad));
    }

    #[test]
    fn streamed_load_single_leaf() {
        let loader = BulkLoader::new(NodeCapacity::new(10).unwrap());
        let t = loader
            .load_streamed(pool(), grid_entries(7), &mut |_, _| {})
            .unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.len(), 7);
        t.validate(false).unwrap();
    }

    /// Two-worker parallel leaf writing produces the same bytes as the
    /// streaming loader, page for page.
    #[test]
    fn parallel_load_is_byte_identical_to_streamed() {
        let cap = NodeCapacity::new(10).unwrap();
        let loader = BulkLoader::new(cap);
        let entries = grid_entries(1234);

        let streamed_disk = Arc::new(MemDisk::default_size());
        let streamed_pool = Arc::new(BufferPool::new(streamed_disk.clone(), 256));
        let streamed = loader
            .load_streamed(streamed_pool, entries.clone(), &mut |_, _| {})
            .unwrap();

        let par_disk = Arc::new(MemDisk::default_size());
        let par_pool = Arc::new(BufferPool::new(par_disk.clone(), 256));
        let n = cap.max();
        let leaf_count = entries.len().div_ceil(n) as u64;
        let load = loader
            .begin_parallel::<2>(par_pool, crate::store::DEFAULT_TREE, leaf_count)
            .unwrap();
        // Split the leaves between two workers at a leaf boundary.
        let split_leaf = leaf_count / 2;
        let split_entry = split_leaf as usize * n;
        let (lo, hi) = entries.split_at(split_entry);
        let mut level1 = vec![None; leaf_count as usize];
        let (res_lo, res_hi) = level1.split_at_mut(split_leaf as usize);
        std::thread::scope(|s| {
            for (slice, first_leaf, results) in [(lo, 0u64, res_lo), (hi, split_leaf, res_hi)] {
                let mut writer = load.leaf_writer(first_leaf, slice.len().div_ceil(n) as u64);
                s.spawn(move || {
                    for (i, group) in slice.chunks(n).enumerate() {
                        results[i] = Some(writer.write_leaf(group).unwrap());
                    }
                    writer.finish().unwrap();
                });
            }
        });
        let level1: Vec<Entry<2>> = level1.into_iter().map(|e| e.unwrap()).collect();
        let par = load
            .finish(entries.len() as u64, level1, &mut |_, _| {})
            .unwrap();

        assert_eq!(par.len(), streamed.len());
        assert_eq!(par.height(), streamed.height());
        assert_eq!(streamed_disk.num_pages(), par_disk.num_pages());
        let mut a = vec![0u8; streamed_disk.page_size()];
        let mut b = vec![0u8; par_disk.page_size()];
        for p in 0..streamed_disk.num_pages() {
            streamed_disk.read_page(storage::PageId(p), &mut a).unwrap();
            par_disk.read_page(storage::PageId(p), &mut b).unwrap();
            assert_eq!(a, b, "page {p} differs");
        }
    }

    #[test]
    fn bulk_loaded_tree_is_dynamically_extendable() {
        // Packing then inserting/deleting must keep a consistent tree —
        // the paper's future work contemplates dynamic R-trees seeded by
        // STR packing.
        let loader = BulkLoader::new(NodeCapacity::new(8).unwrap());
        let mut t = loader
            .load(pool(), grid_entries(500), &mut identity)
            .unwrap();
        for i in 0..100u64 {
            let x = (i % 10) as f64 / 10.0;
            t.insert(Rect::new([x, 0.9], [x + 0.01, 0.95]), 10_000 + i)
                .unwrap();
        }
        assert_eq!(t.len(), 600);
        t.validate(false).unwrap();
        let hits = t.query_point(&Point::new([0.105, 0.92])).unwrap();
        assert!(hits.iter().any(|(_, id)| *id >= 10_000));
    }
}
