//! Node ⇄ page serialization.
//!
//! Layout of a node page (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "RTN1"
//! 4       4     level  (u32; 0 = leaf)
//! 8       4     count  (u32; number of entries)
//! 12      4     dims   (u32; must match the tree's D)
//! 16      8     checksum (FNV-1a of bytes 24..end-of-entries)
//! 24      —     entries: count × (D min f64s, D max f64s, u64 payload)
//! ```
//!
//! One node per page, as the paper assumes throughout. The checksum exists
//! because the storage layer simulates a raw partition: there is no
//! filesystem beneath us to notice a torn or misdirected write.

use bytes::{Buf, BufMut};
use geom::Rect;
use storage::PageId;

use crate::store::{self, page_checksum, EntryCodec, HEADER_LEN};
use crate::{Entry, Node, RTreeError, Result};

const MAGIC: u32 = u32::from_le_bytes(*b"RTN1");

/// Bytes per entry at dimension `D`.
pub const fn entry_size<const D: usize>() -> usize {
    D * 2 * 8 + 8
}

/// Largest node capacity a page of `page_size` bytes can hold at
/// dimension `D`.
pub const fn max_capacity<const D: usize>(page_size: usize) -> usize {
    (page_size - HEADER_LEN) / entry_size::<D>()
}

/// The rectangle entry codec: `D` min f64s, `D` max f64s, u64 payload,
/// with the dimension in the header tag word. Shared by [`crate::RTree`]
/// and [`crate::RPlusTree`]; everything page-level (header, checksum,
/// validation) comes from [`crate::store`].
pub struct RectCodec<const D: usize>;

impl<const D: usize> EntryCodec for RectCodec<D> {
    type Entry = Entry<D>;
    const MAGIC: u32 = MAGIC;
    const ENTRY_SIZE: usize = entry_size::<D>();
    const TAG: u32 = D as u32;

    #[inline]
    fn encode_entry(e: &Entry<D>, mut out: &mut [u8]) {
        for i in 0..D {
            out.put_f64_le(e.rect.lo(i));
        }
        for i in 0..D {
            out.put_f64_le(e.rect.hi(i));
        }
        out.put_u64_le(e.payload);
    }

    #[inline]
    fn decode_entry(mut inp: &[u8]) -> std::result::Result<Entry<D>, String> {
        let mut min = [0.0f64; D];
        let mut max = [0.0f64; D];
        for m in min.iter_mut() {
            *m = inp.get_f64_le();
        }
        for m in max.iter_mut() {
            *m = inp.get_f64_le();
        }
        let payload = inp.get_u64_le();
        let rect = Rect::try_new(min, max).map_err(|e| format!("bad rectangle: {e}"))?;
        Ok(Entry { rect, payload })
    }

    fn bad_magic_msg() -> String {
        "bad magic (not an R-tree node)".to_string()
    }

    fn tag_mismatch_msg(got: u32) -> String {
        format!("dimension mismatch: page has {got}, tree is {D}")
    }
}

/// Serialize `node` into `page` (which must be zeroed or reused whole).
///
/// # Panics
/// Panics if the node does not fit — callers size nodes against
/// [`max_capacity`] via [`crate::NodeCapacity`], so overflow here is a
/// logic error, not an input error.
pub fn encode<const D: usize>(node: &Node<D>, page: &mut [u8]) {
    encode_entries(node.level, &node.entries, page);
}

/// Serialize a node directly from a borrowed entry slice — the
/// allocation-free write path. [`encode`] is a thin wrapper; bulk
/// loaders call this with a sub-slice of the sorted entry run, skipping
/// the intermediate [`Node`] (and its `group.to_vec()`) entirely.
///
/// # Panics
/// Panics if the entries do not fit, like [`encode`].
pub fn encode_entries<const D: usize>(level: u32, entries: &[Entry<D>], page: &mut [u8]) {
    store::encode_node::<RectCodec<D>>(level, entries, page);
}

/// Deserialize a node from `page`.
///
/// `page_id` is only for error messages.
pub fn decode<const D: usize>(page: &[u8], page_id: PageId) -> Result<Node<D>> {
    let (level, entries) = store::decode_node::<RectCodec<D>>(page, page_id)?;
    Ok(Node { level, entries })
}

/// A borrowed, zero-copy view of an encoded node page.
///
/// [`parse`](NodeView::parse) performs the exact validation [`decode`]
/// does — magic, dimension, count-fits, checksum, and a per-entry
/// rectangle sanity scan — but materializes nothing: entries are read
/// lazily, straight out of the page bytes, by the accessors. Query
/// traversal uses this under [`storage::BufferPool::with_page`] so a hot
/// search touches no heap at all; mutation paths keep the owned
/// [`Node`] representation.
///
/// The validation pass means every accessor after a successful `parse`
/// is infallible: any page `parse` accepts, `decode` accepts, and vice
/// versa (asserted by the differential tests).
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a, const D: usize> {
    level: u32,
    count: usize,
    /// Exactly the entry region: `count * entry_size::<D>()` bytes.
    body: &'a [u8],
}

impl<'a, const D: usize> NodeView<'a, D> {
    /// Validate `page` and borrow it as a node view.
    ///
    /// `page_id` is only for error messages. Accepts and rejects exactly
    /// the same pages as [`decode`], with the same error reasons.
    pub fn parse(page: &'a [u8], page_id: PageId) -> Result<Self> {
        if page.len() < HEADER_LEN {
            return Err(corrupt(page_id, "page shorter than header"));
        }
        let mut header = &page[..HEADER_LEN];
        let magic = header.get_u32_le();
        if magic != MAGIC {
            return Err(corrupt(page_id, "bad magic (not an R-tree node)"));
        }
        let level = header.get_u32_le();
        let count = header.get_u32_le() as usize;
        let dims = header.get_u32_le() as usize;
        if dims != D {
            return Err(corrupt(
                page_id,
                &format!("dimension mismatch: page has {dims}, tree is {D}"),
            ));
        }
        let checksum = header.get_u64_le();

        let need = HEADER_LEN + count * entry_size::<D>();
        if need > page.len() {
            return Err(corrupt(page_id, "entry count exceeds page size"));
        }
        if page_checksum(page, need) != checksum {
            return Err(corrupt(page_id, "checksum mismatch (torn write?)"));
        }

        let view = Self {
            level,
            count,
            body: &page[HEADER_LEN..need],
        };
        // Same rectangle sanity scan as decode, so both paths accept and
        // reject identical pages; no allocation, and the pass doubles as
        // a prefetch of the entry region.
        for i in 0..count {
            view.try_rect(i)
                .map_err(|e| corrupt(page_id, &format!("bad rectangle: {e}")))?;
        }
        Ok(view)
    }

    /// Height above the leaf level (leaves are 0).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Whether this node is at the leaf level.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the node holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw little-endian f64 at entry `i`, word `w` (of `2 * D`).
    #[inline]
    fn coord(&self, i: usize, w: usize) -> f64 {
        let off = i * entry_size::<D>() + w * 8;
        f64::from_le_bytes(self.body[off..off + 8].try_into().unwrap())
    }

    /// Rectangle of entry `i`, validated (used by the parse scan).
    fn try_rect(&self, i: usize) -> std::result::Result<Rect<D>, geom::GeomError> {
        let mut min = [0.0f64; D];
        let mut max = [0.0f64; D];
        for (a, m) in min.iter_mut().enumerate() {
            *m = self.coord(i, a);
        }
        for (a, m) in max.iter_mut().enumerate() {
            *m = self.coord(i, D + a);
        }
        Rect::try_new(min, max)
    }

    /// Rectangle of entry `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn rect(&self, i: usize) -> Rect<D> {
        assert!(i < self.count, "entry {i} out of {}", self.count);
        // Parse already proved every rectangle well-formed.
        self.try_rect(i).unwrap()
    }

    /// Payload of entry `i` (data id at leaves, child page otherwise).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn payload(&self, i: usize) -> u64 {
        assert!(i < self.count, "entry {i} out of {}", self.count);
        let off = i * entry_size::<D>() + D * 2 * 8;
        u64::from_le_bytes(self.body[off..off + 8].try_into().unwrap())
    }

    /// Payload of entry `i` interpreted as a child page.
    #[inline]
    pub fn child_page(&self, i: usize) -> PageId {
        PageId(self.payload(i))
    }

    /// Entry `i`, materialized.
    #[inline]
    pub fn entry(&self, i: usize) -> Entry<D> {
        Entry {
            rect: self.rect(i),
            payload: self.payload(i),
        }
    }

    /// Iterate all entries, decoding each lazily.
    pub fn entries(&self) -> impl Iterator<Item = Entry<D>> + '_ {
        (0..self.count).map(move |i| self.entry(i))
    }

    /// Minimum bounding rectangle of all entries (allocation-free,
    /// matching [`Node::mbr`] exactly — `empty` is the union identity).
    pub fn mbr(&self) -> Rect<D> {
        let mut acc = Rect::empty();
        for i in 0..self.count {
            acc.union_in_place(&self.rect(i));
        }
        acc
    }

    /// Materialize the owned [`Node`] (for callers crossing from the
    /// read path to the mutation path).
    pub fn to_node(&self) -> Node<D> {
        Node {
            level: self.level,
            entries: self.entries().collect(),
        }
    }

    /// Invoke `visit(i)` for every entry whose rectangle intersects
    /// `query`, through the batch kernel ([`geom::SoaRects`]) the flat
    /// tier queries with: entries are gathered a block at a time into
    /// stack structure-of-arrays buffers, then tested 4 per step,
    /// branch-free per axis (with the explicit SSE2 path on x86-64 for
    /// `D = 2`). Semantics match testing `rect(i).intersects(query)`
    /// entry by entry, in order — the differential tests assert it.
    #[inline]
    pub fn for_each_intersecting<F: FnMut(usize)>(&self, query: &Rect<D>, visit: &mut F) {
        /// Entries gathered per kernel invocation. Big enough to
        /// amortize the `SoaRects` setup, small enough that the
        /// `2·D·BLOCK` f64 buffers stay comfortably on the stack.
        const BLOCK: usize = 32;
        let mut mins = [[0.0f64; BLOCK]; D];
        let mut maxs = [[0.0f64; BLOCK]; D];
        let mut base = 0;
        while base < self.count {
            let n = BLOCK.min(self.count - base);
            // The gather is the transpose the page layout (AoS) doesn't
            // give us for free; per-axis runs are what the kernel's
            // unaligned vector loads want.
            for j in 0..n {
                for a in 0..D {
                    mins[a][j] = self.coord(base + j, a);
                    maxs[a][j] = self.coord(base + j, D + a);
                }
            }
            let soa = geom::SoaRects::new(
                std::array::from_fn(|a| &mins[a][..n]),
                std::array::from_fn(|a| &maxs[a][..n]),
            );
            soa.for_each_intersecting(0, n, query, &mut |j| visit(base + j));
            base += n;
        }
    }
}

fn corrupt(page: PageId, reason: &str) -> RTreeError {
    RTreeError::Corrupt {
        page,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_node() -> Node<2> {
        Node {
            level: 2,
            entries: (0..10)
                .map(|i| Entry {
                    rect: Rect::new([i as f64, 0.0], [i as f64 + 0.5, 1.0]),
                    payload: 1000 + i,
                })
                .collect(),
        }
    }

    #[test]
    fn round_trip() {
        let node = sample_node();
        let mut page = vec![0u8; 4096];
        encode(&node, &mut page);
        let back: Node<2> = decode(&page, PageId(0)).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn round_trip_empty_node() {
        let node = Node::<2>::new(0);
        let mut page = vec![0u8; 4096];
        encode(&node, &mut page);
        let back: Node<2> = decode(&page, PageId(0)).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn round_trip_3d() {
        let node = Node {
            level: 1,
            entries: vec![Entry {
                rect: Rect::new([0.0, 1.0, 2.0], [3.0, 4.0, 5.0]),
                payload: 42,
            }],
        };
        let mut page = vec![0u8; 4096];
        encode(&node, &mut page);
        let back: Node<3> = decode(&page, PageId(0)).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn stale_bytes_are_harmless() {
        // Re-encoding a smaller node over a frame that held a bigger one
        // must not resurrect old entries.
        let mut page = vec![0u8; 4096];
        encode(&sample_node(), &mut page);
        let small = Node::<2>::leaf(vec![Entry::data(Rect::new([0.0, 0.0], [1.0, 1.0]), 7)]);
        encode(&small, &mut page);
        let back: Node<2> = decode(&page, PageId(0)).unwrap();
        assert_eq!(back, small);
    }

    #[test]
    fn detects_bad_magic() {
        let page = vec![0u8; 4096];
        assert!(matches!(
            decode::<2>(&page, PageId(3)),
            Err(RTreeError::Corrupt {
                page: PageId(3),
                ..
            })
        ));
    }

    #[test]
    fn detects_flipped_bit() {
        let mut page = vec![0u8; 4096];
        encode(&sample_node(), &mut page);
        page[100] ^= 0x01;
        let err = decode::<2>(&page, PageId(0)).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn detects_dimension_mismatch() {
        let mut page = vec![0u8; 4096];
        encode(&sample_node(), &mut page);
        let err = decode::<3>(&page, PageId(0)).unwrap_err();
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn detects_overlong_count() {
        let mut page = vec![0u8; 128];
        encode(&Node::<2>::new(0), &mut page);
        // Forge a count that cannot fit in 128 bytes.
        page[8..12].copy_from_slice(&1000u32.to_le_bytes());
        let err = decode::<2>(&page, PageId(0)).unwrap_err();
        assert!(err.to_string().contains("count"));
    }

    #[test]
    fn capacity_math() {
        // 2-D: (4096 - 24) / 40 = 101 entries; the paper's 100 fits.
        assert_eq!(entry_size::<2>(), 40);
        assert_eq!(max_capacity::<2>(4096), 101);
        assert!(max_capacity::<2>(4096) >= 100);
        // 3-D entries are 56 bytes.
        assert_eq!(entry_size::<3>(), 56);
        assert_eq!(max_capacity::<3>(4096), 72);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn encode_panics_when_node_too_big() {
        let node = sample_node(); // 10 entries * 40 + 24 = 424 bytes
        let mut page = vec![0u8; 128];
        encode(&node, &mut page);
    }

    #[test]
    fn encode_entries_matches_encode() {
        let node = sample_node();
        let mut via_node = vec![0u8; 4096];
        let mut via_slice = vec![0u8; 4096];
        encode(&node, &mut via_node);
        encode_entries(node.level, &node.entries, &mut via_slice);
        assert_eq!(via_node, via_slice);
    }

    #[test]
    fn view_matches_decode() {
        let node = sample_node();
        let mut page = vec![0u8; 4096];
        encode(&node, &mut page);
        let view = NodeView::<2>::parse(&page, PageId(0)).unwrap();
        assert_eq!(view.level(), node.level);
        assert!(!view.is_leaf());
        assert_eq!(view.len(), node.len());
        assert!(!view.is_empty());
        assert_eq!(view.mbr(), node.mbr());
        for (i, e) in node.entries.iter().enumerate() {
            assert_eq!(view.entry(i), *e);
            assert_eq!(view.rect(i), e.rect);
            assert_eq!(view.payload(i), e.payload);
            assert_eq!(view.child_page(i), e.child_page());
        }
        assert_eq!(view.entries().collect::<Vec<_>>(), node.entries);
        assert_eq!(view.to_node(), node);
    }

    /// The blocked SoA scan must visit exactly the indices the
    /// per-entry `intersects` scan does, in the same order — at counts
    /// exercising full blocks, the scalar tail, and both at once.
    #[test]
    fn batch_scan_matches_scalar_scan() {
        fn check<const D: usize>(count: usize, seed: u64) {
            let mut s = seed;
            let mut next01 = move || {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
            };
            let entries: Vec<Entry<D>> = (0..count)
                .map(|i| {
                    let mut lo = [0.0; D];
                    let mut hi = [0.0; D];
                    for a in 0..D {
                        lo[a] = next01();
                        // Mix zero-extent and extended rectangles.
                        hi[a] = if i % 4 == 0 {
                            lo[a]
                        } else {
                            lo[a] + next01() * 0.2
                        };
                    }
                    Entry::data(Rect::new(lo, hi), i as u64)
                })
                .collect();
            let mut page = vec![0u8; 8192];
            encode_entries(0, &entries, &mut page);
            let view = NodeView::<D>::parse(&page, PageId(0)).unwrap();
            for _ in 0..40 {
                let mut qlo = [0.0; D];
                let mut qhi = [0.0; D];
                for a in 0..D {
                    qlo[a] = next01();
                    qhi[a] = qlo[a] + next01() * 0.5;
                }
                let q = Rect::new(qlo, qhi);
                let mut got = Vec::new();
                view.for_each_intersecting(&q, &mut |i| got.push(i));
                let want: Vec<usize> = (0..count)
                    .filter(|&i| view.rect(i).intersects(&q))
                    .collect();
                assert_eq!(got, want, "D={D} count={count}");
            }
            // Empty query hits nothing.
            let mut none = 0;
            view.for_each_intersecting(&Rect::empty(), &mut |_| none += 1);
            assert_eq!(none, 0);
        }
        check::<2>(101, 1); // a full 4 KiB 2-D page: 3 blocks + tail
        check::<2>(32, 2); // exactly one block
        check::<2>(5, 3); // tail only
        check::<3>(72, 4);
        check::<3>(33, 5);
    }

    #[test]
    fn view_rejects_what_decode_rejects() {
        let mut page = vec![0u8; 4096];
        encode(&sample_node(), &mut page);
        page[100] ^= 0x01;
        let d = decode::<2>(&page, PageId(9)).unwrap_err().to_string();
        let v = NodeView::<2>::parse(&page, PageId(9))
            .unwrap_err()
            .to_string();
        assert_eq!(d, v);
    }
}
