//! Node ⇄ page serialization.
//!
//! Layout of a node page (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "RTN1"
//! 4       4     level  (u32; 0 = leaf)
//! 8       4     count  (u32; number of entries)
//! 12      4     dims   (u32; must match the tree's D)
//! 16      8     checksum (FNV-1a of bytes 24..end-of-entries)
//! 24      —     entries: count × (D min f64s, D max f64s, u64 payload)
//! ```
//!
//! One node per page, as the paper assumes throughout. The checksum exists
//! because the storage layer simulates a raw partition: there is no
//! filesystem beneath us to notice a torn or misdirected write.

use bytes::{Buf, BufMut};
use geom::Rect;
use storage::PageId;

use crate::{Entry, Node, Result, RTreeError};

const MAGIC: u32 = u32::from_le_bytes(*b"RTN1");
const HEADER_LEN: usize = 24;

/// Bytes per entry at dimension `D`.
pub const fn entry_size<const D: usize>() -> usize {
    D * 2 * 8 + 8
}

/// Largest node capacity a page of `page_size` bytes can hold at
/// dimension `D`.
pub const fn max_capacity<const D: usize>(page_size: usize) -> usize {
    (page_size - HEADER_LEN) / entry_size::<D>()
}

/// FNV-1a, 64-bit, streaming.
fn fnv1a_update(mut h: u64, data: &[u8]) -> u64 {
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Checksum over everything that matters: the header prefix (magic,
/// level, count, dims — bytes 0..16) and the entry region. A flipped
/// bit anywhere meaningful is detected.
fn page_checksum(page: &[u8], body_end: usize) -> u64 {
    let h = fnv1a_update(FNV_SEED, &page[..16]);
    fnv1a_update(h, &page[HEADER_LEN..body_end])
}

/// Serialize `node` into `page` (which must be zeroed or reused whole).
///
/// # Panics
/// Panics if the node does not fit — callers size nodes against
/// [`max_capacity`] via [`crate::NodeCapacity`], so overflow here is a
/// logic error, not an input error.
pub fn encode<const D: usize>(node: &Node<D>, page: &mut [u8]) {
    let need = HEADER_LEN + node.len() * entry_size::<D>();
    assert!(
        need <= page.len(),
        "node with {} entries needs {need} bytes, page has {}",
        node.len(),
        page.len()
    );

    // Entries first (into the region after the header), then the header
    // with the checksum over that region.
    {
        let mut body = &mut page[HEADER_LEN..need];
        for e in &node.entries {
            for i in 0..D {
                body.put_f64_le(e.rect.lo(i));
            }
            for i in 0..D {
                body.put_f64_le(e.rect.hi(i));
            }
            body.put_u64_le(e.payload);
        }
    }
    {
        let mut header = &mut page[..16];
        header.put_u32_le(MAGIC);
        header.put_u32_le(node.level);
        header.put_u32_le(node.len() as u32);
        header.put_u32_le(D as u32);
    }
    let checksum = page_checksum(page, need);
    let mut cks = &mut page[16..HEADER_LEN];
    cks.put_u64_le(checksum);
    // Anything after `need` is stale bytes from a previous occupant of the
    // frame; the count field makes them unreachable.
}

/// Deserialize a node from `page`.
///
/// `page_id` is only for error messages.
pub fn decode<const D: usize>(page: &[u8], page_id: PageId) -> Result<Node<D>> {
    if page.len() < HEADER_LEN {
        return Err(corrupt(page_id, "page shorter than header"));
    }
    let mut header = &page[..HEADER_LEN];
    let magic = header.get_u32_le();
    if magic != MAGIC {
        return Err(corrupt(page_id, "bad magic (not an R-tree node)"));
    }
    let level = header.get_u32_le();
    let count = header.get_u32_le() as usize;
    let dims = header.get_u32_le() as usize;
    if dims != D {
        return Err(corrupt(
            page_id,
            &format!("dimension mismatch: page has {dims}, tree is {D}"),
        ));
    }
    let checksum = header.get_u64_le();

    let need = HEADER_LEN + count * entry_size::<D>();
    if need > page.len() {
        return Err(corrupt(page_id, "entry count exceeds page size"));
    }
    if page_checksum(page, need) != checksum {
        return Err(corrupt(page_id, "checksum mismatch (torn write?)"));
    }

    let mut body = &page[HEADER_LEN..need];
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let mut min = [0.0f64; D];
        let mut max = [0.0f64; D];
        for m in min.iter_mut() {
            *m = body.get_f64_le();
        }
        for m in max.iter_mut() {
            *m = body.get_f64_le();
        }
        let payload = body.get_u64_le();
        let rect = Rect::try_new(min, max)
            .map_err(|e| corrupt(page_id, &format!("bad rectangle: {e}")))?;
        entries.push(Entry { rect, payload });
    }
    Ok(Node { level, entries })
}

fn corrupt(page: PageId, reason: &str) -> RTreeError {
    RTreeError::Corrupt {
        page,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_node() -> Node<2> {
        Node {
            level: 2,
            entries: (0..10)
                .map(|i| Entry {
                    rect: Rect::new([i as f64, 0.0], [i as f64 + 0.5, 1.0]),
                    payload: 1000 + i,
                })
                .collect(),
        }
    }

    #[test]
    fn round_trip() {
        let node = sample_node();
        let mut page = vec![0u8; 4096];
        encode(&node, &mut page);
        let back: Node<2> = decode(&page, PageId(0)).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn round_trip_empty_node() {
        let node = Node::<2>::new(0);
        let mut page = vec![0u8; 4096];
        encode(&node, &mut page);
        let back: Node<2> = decode(&page, PageId(0)).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn round_trip_3d() {
        let node = Node {
            level: 1,
            entries: vec![Entry {
                rect: Rect::new([0.0, 1.0, 2.0], [3.0, 4.0, 5.0]),
                payload: 42,
            }],
        };
        let mut page = vec![0u8; 4096];
        encode(&node, &mut page);
        let back: Node<3> = decode(&page, PageId(0)).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn stale_bytes_are_harmless() {
        // Re-encoding a smaller node over a frame that held a bigger one
        // must not resurrect old entries.
        let mut page = vec![0u8; 4096];
        encode(&sample_node(), &mut page);
        let small = Node::<2>::leaf(vec![Entry::data(Rect::new([0.0, 0.0], [1.0, 1.0]), 7)]);
        encode(&small, &mut page);
        let back: Node<2> = decode(&page, PageId(0)).unwrap();
        assert_eq!(back, small);
    }

    #[test]
    fn detects_bad_magic() {
        let page = vec![0u8; 4096];
        assert!(matches!(
            decode::<2>(&page, PageId(3)),
            Err(RTreeError::Corrupt { page: PageId(3), .. })
        ));
    }

    #[test]
    fn detects_flipped_bit() {
        let mut page = vec![0u8; 4096];
        encode(&sample_node(), &mut page);
        page[100] ^= 0x01;
        let err = decode::<2>(&page, PageId(0)).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn detects_dimension_mismatch() {
        let mut page = vec![0u8; 4096];
        encode(&sample_node(), &mut page);
        let err = decode::<3>(&page, PageId(0)).unwrap_err();
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn detects_overlong_count() {
        let mut page = vec![0u8; 128];
        encode(&Node::<2>::new(0), &mut page);
        // Forge a count that cannot fit in 128 bytes.
        page[8..12].copy_from_slice(&1000u32.to_le_bytes());
        let err = decode::<2>(&page, PageId(0)).unwrap_err();
        assert!(err.to_string().contains("count"));
    }

    #[test]
    fn capacity_math() {
        // 2-D: (4096 - 24) / 40 = 101 entries; the paper's 100 fits.
        assert_eq!(entry_size::<2>(), 40);
        assert_eq!(max_capacity::<2>(4096), 101);
        assert!(max_capacity::<2>(4096) >= 100);
        // 3-D entries are 56 bytes.
        assert_eq!(entry_size::<3>(), 56);
        assert_eq!(max_capacity::<3>(4096), 72);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn encode_panics_when_node_too_big() {
        let node = sample_node(); // 10 entries * 40 + 24 = 424 bytes
        let mut page = vec![0u8; 128];
        encode(&node, &mut page);
    }
}
