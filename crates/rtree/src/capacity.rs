//! Node fan-out configuration.

/// Maximum and minimum number of entries per node.
///
/// The paper runs every experiment with 100 rectangles per node and notes
/// "most R-trees have a fan out of 25 to 100" (§3). The minimum applies
/// only to the dynamic (Guttman) algorithms: packed trees fill every node
/// to `max` except the last node of each level, which is exactly the
/// near-100% space utilization packing is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCapacity {
    max: usize,
    min: usize,
}

impl NodeCapacity {
    /// Capacity with Guttman's common choice of minimum fill, 40% of the
    /// maximum. Returns `None` for `max < 2` (a node must be splittable
    /// into two non-empty halves).
    pub fn new(max: usize) -> Option<Self> {
        if max < 2 {
            return None;
        }
        // 40% of max, but at least 1 and at most max/2 (Guttman requires
        // m <= M/2 so a split can always produce two legal nodes).
        let min = (max * 2 / 5).clamp(1, max / 2);
        Some(Self { max, min })
    }

    /// Capacity with an explicit minimum. Requires `2 <= max` and
    /// `1 <= min <= max / 2`.
    pub fn with_min(max: usize, min: usize) -> Option<Self> {
        if max < 2 || min < 1 || min > max / 2 {
            return None;
        }
        Some(Self { max, min })
    }

    /// Maximum entries per node (the paper's `n`).
    #[inline]
    pub fn max(&self) -> usize {
        self.max
    }

    /// Minimum entries per non-root node under dynamic maintenance
    /// (Guttman's `m`).
    #[inline]
    pub fn min(&self) -> usize {
        self.min
    }
}

impl Default for NodeCapacity {
    /// The paper's configuration: 100 rectangles per node.
    fn default() -> Self {
        Self::new(100).expect("100 is a valid capacity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default() {
        let c = NodeCapacity::default();
        assert_eq!(c.max(), 100);
        assert_eq!(c.min(), 40);
    }

    #[test]
    fn minimum_is_clamped() {
        // Small capacities keep min <= max/2 so splits stay legal.
        let c = NodeCapacity::new(3).unwrap();
        assert_eq!(c.min(), 1);
        let c = NodeCapacity::new(5).unwrap();
        assert!(c.min() >= 1 && c.min() <= 2);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(NodeCapacity::new(0).is_none());
        assert!(NodeCapacity::new(1).is_none());
        assert!(NodeCapacity::with_min(10, 0).is_none());
        assert!(NodeCapacity::with_min(10, 6).is_none());
        assert!(NodeCapacity::with_min(1, 1).is_none());
    }

    #[test]
    fn with_min_accepts_boundary() {
        let c = NodeCapacity::with_min(10, 5).unwrap();
        assert_eq!(c.min(), 5);
        let c = NodeCapacity::with_min(2, 1).unwrap();
        assert_eq!((c.max(), c.min()), (2, 1));
    }
}
