//! Flat-tier round trips: build → load (owned / borrowed / mmap) →
//! query parity with the source paged tree, plus rejection of corrupt,
//! misaligned, and mismatched buffers.

use std::sync::Arc;

use flat_rtree as flat;

use flat::{FlatError, FlatTree};
use geom::{Rect, Rect2};
use rtree::{NodeCapacity, RTree};
use storage::{BufferPool, MemDisk};
use str_core::PackerKind;

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Arc::new(MemDisk::default_size()), 1024))
}

fn packed(n: usize, seed: u64) -> RTree<2> {
    let items = datagen::synthetic::synthetic_squares(n, 1.0, seed).items();
    PackerKind::Str
        .pack(pool(), items, NodeCapacity::new(16).unwrap())
        .unwrap()
}

fn sorted(mut v: Vec<(Rect2, u64)>) -> Vec<(Rect2, u64)> {
    v.sort_by_key(|&(_, id)| id);
    v
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("str-flat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn flat_matches_paged_queries() {
    let tree = packed(3000, 42);
    let flat = FlatTree::from_rtree(&tree).unwrap();
    assert_eq!(flat.len(), 3000);
    assert_eq!(flat.num_levels() as u32, tree.height() + 1);
    assert_eq!(flat.root_mbr(), tree.root_mbr().unwrap());

    for (i, side) in [(0u64, 0.05), (1, 0.2), (2, 0.7), (3, 1.0)] {
        let lo = (i as f64) * 0.13 % 0.8;
        let q = Rect::new([lo, lo], [(lo + side).min(1.0), (lo + side).min(1.0)]);
        let want = sorted(tree.query_region(&q).unwrap());
        let got = sorted(flat.query_region(&q));
        assert_eq!(got, want, "query {q:?}");
    }

    // Point queries go through the same path.
    let p = geom::Point::new([0.5, 0.5]);
    let want = sorted(tree.query_region(&Rect::from_point(p)).unwrap());
    assert_eq!(sorted(flat.query_point(&p)), want);

    // Empty query region returns nothing.
    assert!(flat.query_region(&Rect::empty()).is_empty());
}

#[test]
fn borrowed_and_owned_loads_share_bytes() {
    let tree = packed(500, 7);
    let bytes = flat::flatten_to_bytes(&tree).unwrap();
    let borrowed = FlatTree::<2>::from_bytes(&bytes).unwrap();
    let owned = FlatTree::<2>::from_vec(bytes.clone()).unwrap();
    assert_eq!(borrowed.as_bytes(), owned.as_bytes());
    let q = Rect::new([0.1, 0.1], [0.4, 0.4]);
    assert_eq!(
        sorted(borrowed.query_region(&q)),
        sorted(owned.query_region(&q))
    );
}

#[test]
fn mmap_round_trip_serves_identical_results() {
    let tree = packed(2000, 9);
    let path = tmp("round.flat");
    let written = FlatTree::write_file(&tree, &path).unwrap();
    assert_eq!(written, std::fs::metadata(&path).unwrap().len());

    let flat = FlatTree::<2>::open(&path).unwrap();
    assert!(flat.is_mapped());
    assert_eq!(flat.len(), 2000);
    let q = Rect::new([0.2, 0.3], [0.6, 0.8]);
    assert_eq!(
        sorted(flat.query_region(&q)),
        sorted(tree.query_region(&q).unwrap())
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn empty_tree_flattens_and_serves() {
    let tree = RTree::<2>::create(pool(), NodeCapacity::new(8).unwrap()).unwrap();
    let flat = FlatTree::from_rtree(&tree).unwrap();
    assert!(flat.is_empty());
    assert_eq!(flat.num_levels(), 2);
    assert!(flat.root_mbr().is_empty());
    assert!(flat.query_region(&Rect::unit()).is_empty());
    assert!(flat.query_point(&geom::Point::new([0.0, 0.0])).is_empty());
}

#[test]
fn corruption_is_caught_by_checksum() {
    let tree = packed(200, 3);
    let bytes = flat::flatten_to_bytes(&tree).unwrap();
    // Flip one bit in every section in turn; each must be rejected.
    for off in [70usize, bytes.len() / 2, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[off] ^= 0x01;
        match FlatTree::<2>::from_vec(bad) {
            Err(FlatError::ChecksumMismatch { .. }) => {}
            other => panic!("corruption at {off} not caught: {other:?}"),
        }
    }
}

#[test]
fn truncation_is_rejected() {
    let tree = packed(200, 4);
    let bytes = flat::flatten_to_bytes(&tree).unwrap();
    let short = bytes[..bytes.len() - 8].to_vec();
    assert!(matches!(
        FlatTree::<2>::from_vec(short),
        Err(FlatError::Parse(_))
    ));
}

#[test]
fn misaligned_borrow_fails_cleanly() {
    let tree = packed(100, 5);
    let bytes = flat::flatten_to_bytes(&tree).unwrap();
    // Build a buffer misaligned by construction: copy into an 8-aligned
    // allocation at offset 1.
    let mut backing = vec![0u8; bytes.len() + 8];
    let shift = {
        let base = backing.as_ptr() as usize;
        (8 - base % 8) % 8 + 1
    };
    backing[shift..shift + bytes.len()].copy_from_slice(&bytes);
    let misaligned = &backing[shift..shift + bytes.len()];
    assert_eq!(misaligned.as_ptr() as usize % 8, 1);
    assert!(matches!(
        FlatTree::<2>::from_bytes(misaligned),
        Err(FlatError::Unaligned)
    ));
}

#[test]
fn dims_mismatch_is_rejected() {
    let tree = packed(100, 6);
    let bytes = flat::flatten_to_bytes(&tree).unwrap();
    assert!(matches!(
        FlatTree::<3>::from_vec(bytes),
        Err(FlatError::DimsMismatch {
            file: 2,
            requested: 3
        })
    ));
}

#[test]
fn missing_file_is_io_error() {
    assert!(matches!(
        FlatTree::<2>::open(tmp("does-not-exist.flat")),
        Err(FlatError::Io(_))
    ));
}
