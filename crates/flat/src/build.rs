//! Lowering: packed paged tree → flat buffer.
//!
//! The walk reads the tree level by level in BFS parent-entry order
//! ([`RTree::level_order`]) and writes slots bottom-up: flat level 0 is
//! the data items (one slot per leaf entry, `idx` = payload), flat
//! level `k ≥ 1` holds the paged nodes of height `k-1` (slot MBR = node
//! MBR, `idx` = global slot index of the node's first child). Because
//! children were emitted in the same order their parents reference
//! them, each node's children are one contiguous run, closed by the
//! next node's `idx` — no child counts, no pointers.
//!
//! One representational note: the paged tree stores *entry* rectangles
//! in parents, and its validator enforces tightness (a parent entry's
//! MBR equals the child node's MBR exactly), so pruning on per-node
//! MBRs here visits exactly the nodes the paged traversal would.

use crate::abi::{checksum, Header, Layout, CHECKSUM_OFF, HEADER_LEN};
use crate::Result;
use rtree::RTree;

/// Lower `tree` into a self-contained flat buffer (see [`crate::abi`]
/// for the wire layout). The buffer passes full load validation,
/// checksum included.
pub fn flatten_to_bytes<const D: usize>(tree: &RTree<D>) -> Result<Vec<u8>> {
    let mut levels = tree.level_order()?; // root level first
    levels.reverse(); // leaf level first, matching flat level order

    let num_items: u64 = tree.len();
    // Flat level sizes: items, then one flat level per paged level,
    // leaves upward.
    let mut level_sizes: Vec<usize> = Vec::with_capacity(levels.len() + 1);
    level_sizes.push(num_items as usize);
    level_sizes.extend(levels.iter().map(|l| l.nodes.len()));
    let num_nodes: usize = level_sizes.iter().sum();

    let layout = Layout {
        dims: D,
        num_levels: level_sizes.len(),
        num_nodes,
    };
    let total_len = layout.total_len();
    let mut buf = vec![0u8; total_len];

    // Level bounds: cumulative tiling of the slot space, items first.
    let mut bounds = Vec::with_capacity(level_sizes.len());
    let mut at = 0usize;
    for &size in &level_sizes {
        bounds.push((at, at + size));
        at += size;
    }

    {
        let mut w = &mut buf[layout.bounds_off()..layout.coords_off()];
        for &(start, end) in &bounds {
            w[..8].copy_from_slice(&(start as u64).to_le_bytes());
            w[8..16].copy_from_slice(&(end as u64).to_le_bytes());
            w = &mut w[16..];
        }
    }

    // One pass per slot: items stream out of the leaf nodes' entries,
    // node slots out of the levels themselves. `put` writes one slot's
    // MBR + idx at a global slot position.
    let put = |buf: &mut Vec<u8>, slot: usize, lo: &[f64], hi: &[f64], idx: u64| {
        for a in 0..D {
            let off = layout.axis_min_off(a) + 8 * slot;
            buf[off..off + 8].copy_from_slice(&lo[a].to_le_bytes());
            let off = layout.axis_max_off(a) + 8 * slot;
            buf[off..off + 8].copy_from_slice(&hi[a].to_le_bytes());
        }
        let off = layout.idx_off() + 8 * slot;
        buf[off..off + 8].copy_from_slice(&idx.to_le_bytes());
    };

    // Items: leaf entries in BFS leaf order.
    let mut slot = 0usize;
    for leaf in &levels[0].nodes {
        for e in &leaf.entries {
            put(&mut buf, slot, e.rect.min(), e.rect.max(), e.payload);
            slot += 1;
        }
    }
    debug_assert_eq!(slot, num_items as usize);

    // Node levels: each slot's idx is a running first-child cursor that
    // starts at the child level's first slot and advances by the node's
    // entry count.
    for (flat_level, paged) in levels.iter().enumerate().map(|(i, l)| (i + 1, l)) {
        let mut child = bounds[flat_level - 1].0 as u64;
        for node in &paged.nodes {
            let mbr = node.mbr();
            put(&mut buf, slot, mbr.min(), mbr.max(), child);
            child += node.len() as u64;
            slot += 1;
        }
        debug_assert_eq!(child as usize, bounds[flat_level - 1].1);
    }
    debug_assert_eq!(slot, num_nodes);

    let header = Header {
        dims: D as u16,
        node_capacity: tree.capacity().max() as u32,
        num_levels: layout.num_levels as u32,
        num_items,
        num_nodes: num_nodes as u64,
        total_len: total_len as u64,
        checksum: 0,
    };
    buf[..HEADER_LEN].copy_from_slice(&header.encode());
    let sum = checksum(&buf);
    buf[CHECKSUM_OFF..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
    Ok(buf)
}
