//! The flat tier's wire ABI: one contiguous little-endian buffer.
//!
//! Layout (all offsets 8-byte aligned; see DESIGN.md §11):
//!
//! ```text
//! [ 0 .. 64)                      header (fixed 64 bytes)
//! [64 .. 64 + 16·L)               level bounds: L × (start u64, end u64)
//! [.. + 8·D·N)                    per-axis minimum coords: D × N f64
//! [.. + 8·D·N)                    per-axis maximum coords: D × N f64
//! [.. + 8·N)                      idx array: N × u64
//! ```
//!
//! with `L = num_levels`, `D = dims`, `N = num_nodes` (total slots over
//! all levels). Header fields, offsets from 0:
//!
//! | off | size | field                                         |
//! |-----|------|-----------------------------------------------|
//! |   0 |    4 | magic `b"FLT1"`                               |
//! |   4 |    2 | version (`1`)                                 |
//! |   6 |    2 | dims                                          |
//! |   8 |    4 | node capacity of the source tree              |
//! |  12 |    4 | num_levels                                    |
//! |  16 |    8 | num_items (level-0 slot count)                |
//! |  24 |    8 | num_nodes (slot count over all levels)        |
//! |  32 |    8 | total_len (whole-buffer byte length)          |
//! |  40 |   16 | reserved, zero                                |
//! |  56 |    8 | FNV-1a checksum of bytes `[0..56) ++ [64..total_len)` |
//!
//! Levels are stored *items first*: level 0 holds the data items
//! (slot coords = item MBR, `idx` = item payload), level 1 the source
//! tree's leaf nodes, and the top level (`L-1`) is the single root
//! slot. Because each level's slots appear in BFS parent-entry order,
//! the children of internal slot `i` occupy the contiguous slot range
//! `[idx[i], idx[i+1])` — closed by the *next level's start* for the
//! last slot of a level, since levels tile the slot space gap-free.

use crate::FlatError;
use storage::{fnv1a_update, FNV_SEED};

/// Magic bytes at offset 0.
pub const MAGIC: [u8; 4] = *b"FLT1";
/// Current wire version.
pub const VERSION: u16 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 64;
/// Offset of the checksum field within the header.
pub const CHECKSUM_OFF: usize = 56;

/// Parsed copy of the fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Spatial dimension of every stored MBR.
    pub dims: u16,
    /// Node capacity of the source paged tree (informational).
    pub node_capacity: u32,
    /// Number of levels, items level included (≥ 2).
    pub num_levels: u32,
    /// Slots in level 0 (the data items).
    pub num_items: u64,
    /// Slots over all levels.
    pub num_nodes: u64,
    /// Total buffer length in bytes.
    pub total_len: u64,
    /// Stored whole-buffer checksum.
    pub checksum: u64,
}

/// Section offsets derived from the three header counts.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    /// Spatial dimension.
    pub dims: usize,
    /// Level count.
    pub num_levels: usize,
    /// Total slot count.
    pub num_nodes: usize,
}

impl Layout {
    /// Byte offset of the level-bounds table.
    pub fn bounds_off(self) -> usize {
        HEADER_LEN
    }

    /// Byte offset of the coordinate arrays.
    pub fn coords_off(self) -> usize {
        HEADER_LEN + 16 * self.num_levels
    }

    /// Byte offset of axis `a`'s minimum-coordinate array.
    pub fn axis_min_off(self, a: usize) -> usize {
        self.coords_off() + 8 * a * self.num_nodes
    }

    /// Byte offset of axis `a`'s maximum-coordinate array.
    pub fn axis_max_off(self, a: usize) -> usize {
        self.coords_off() + 8 * (self.dims + a) * self.num_nodes
    }

    /// Byte offset of the idx array.
    pub fn idx_off(self) -> usize {
        self.coords_off() + 16 * self.dims * self.num_nodes
    }

    /// Total buffer length this layout implies.
    pub fn total_len(self) -> usize {
        self.idx_off() + 8 * self.num_nodes
    }
}

impl Header {
    /// The section layout this header describes.
    pub fn layout(&self) -> Layout {
        Layout {
            dims: self.dims as usize,
            num_levels: self.num_levels as usize,
            num_nodes: self.num_nodes as usize,
        }
    }

    /// Serialize into the fixed 64-byte header block.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&MAGIC);
        h[4..6].copy_from_slice(&VERSION.to_le_bytes());
        h[6..8].copy_from_slice(&self.dims.to_le_bytes());
        h[8..12].copy_from_slice(&self.node_capacity.to_le_bytes());
        h[12..16].copy_from_slice(&self.num_levels.to_le_bytes());
        h[16..24].copy_from_slice(&self.num_items.to_le_bytes());
        h[24..32].copy_from_slice(&self.num_nodes.to_le_bytes());
        h[32..40].copy_from_slice(&self.total_len.to_le_bytes());
        h[CHECKSUM_OFF..].copy_from_slice(&self.checksum.to_le_bytes());
        h
    }

    /// Parse and structurally validate the header against the buffer it
    /// came from (magic, version, lengths, checksum).
    pub fn parse(bytes: &[u8]) -> Result<Self, FlatError> {
        if bytes.len() < HEADER_LEN {
            return Err(FlatError::Parse(format!(
                "buffer of {} bytes is shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[0..4] != MAGIC {
            return Err(FlatError::Parse("bad magic (not a flat index)".into()));
        }
        let u16le = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().unwrap());
        let u32le = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64le = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let version = u16le(4);
        if version != VERSION {
            return Err(FlatError::Parse(format!(
                "unsupported flat version {version} (expected {VERSION})"
            )));
        }
        let hdr = Header {
            dims: u16le(6),
            node_capacity: u32le(8),
            num_levels: u32le(12),
            num_items: u64le(16),
            num_nodes: u64le(24),
            total_len: u64le(32),
            checksum: u64le(CHECKSUM_OFF),
        };
        if hdr.dims == 0 {
            return Err(FlatError::Parse("dims is zero".into()));
        }
        if hdr.num_levels < 2 {
            return Err(FlatError::Parse(format!(
                "num_levels {} < 2 (items level + at least one node level)",
                hdr.num_levels
            )));
        }
        if hdr.total_len != bytes.len() as u64 {
            return Err(FlatError::Parse(format!(
                "header total_len {} != buffer length {}",
                hdr.total_len,
                bytes.len()
            )));
        }
        let layout = hdr.layout();
        if layout.total_len() as u64 != hdr.total_len {
            return Err(FlatError::Parse(format!(
                "section layout implies {} bytes, header claims {}",
                layout.total_len(),
                hdr.total_len
            )));
        }
        let computed = checksum(bytes);
        if computed != hdr.checksum {
            return Err(FlatError::ChecksumMismatch {
                stored: hdr.checksum,
                computed,
            });
        }
        Ok(hdr)
    }
}

/// Whole-buffer FNV-1a checksum: everything except the checksum field
/// itself and the header's trailing pad (bytes `[56..64)`).
pub fn checksum(bytes: &[u8]) -> u64 {
    fnv1a_update(
        fnv1a_update(FNV_SEED, &bytes[..CHECKSUM_OFF]),
        &bytes[HEADER_LEN..],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let hdr = Header {
            dims: 2,
            node_capacity: 100,
            num_levels: 3,
            num_items: 10,
            num_nodes: 13,
            total_len: Layout {
                dims: 2,
                num_levels: 3,
                num_nodes: 13,
            }
            .total_len() as u64,
            checksum: 0,
        };
        let mut buf = hdr.encode().to_vec();
        buf.resize(hdr.total_len as usize, 0);
        let sum = checksum(&buf);
        buf[CHECKSUM_OFF..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
        let parsed = Header::parse(&buf).unwrap();
        assert_eq!(parsed.dims, 2);
        assert_eq!(parsed.num_nodes, 13);
        assert_eq!(parsed.checksum, sum);
    }

    #[test]
    fn layout_offsets_are_aligned_and_tiled() {
        let l = Layout {
            dims: 3,
            num_levels: 4,
            num_nodes: 77,
        };
        for off in [
            l.bounds_off(),
            l.coords_off(),
            l.axis_min_off(2),
            l.axis_max_off(0),
            l.idx_off(),
            l.total_len(),
        ] {
            assert_eq!(off % 8, 0);
        }
        // min/max arrays tile the coord section exactly.
        assert_eq!(l.axis_min_off(0), l.coords_off());
        assert_eq!(l.axis_max_off(l.dims - 1) + 8 * l.num_nodes, l.idx_off());
    }

    #[test]
    fn corrupt_header_variants_are_rejected() {
        let hdr = Header {
            dims: 2,
            node_capacity: 4,
            num_levels: 2,
            num_items: 1,
            num_nodes: 2,
            total_len: Layout {
                dims: 2,
                num_levels: 2,
                num_nodes: 2,
            }
            .total_len() as u64,
            checksum: 0,
        };
        let mut buf = hdr.encode().to_vec();
        buf.resize(hdr.total_len as usize, 0);
        let sum = checksum(&buf);
        buf[CHECKSUM_OFF..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
        assert!(Header::parse(&buf).is_ok());

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(Header::parse(&bad), Err(FlatError::Parse(_))));

        let mut bad = buf.clone();
        bad[4] = 9; // version
        assert!(matches!(Header::parse(&bad), Err(FlatError::Parse(_))));

        // Flip one payload byte: checksum must catch it.
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 0xff;
        assert!(matches!(
            Header::parse(&bad),
            Err(FlatError::ChecksumMismatch { .. })
        ));

        assert!(Header::parse(&buf[..40]).is_err());
        assert!(Header::parse(&[]).is_err());
    }
}
