//! Flat-packed immutable index tier: zero-copy serving for packed R-trees.
//!
//! STR-packed trees are static by construction (paper §2.2), yet the
//! paged [`rtree`] crate routes every query through the buffer-pool
//! machinery built for *dynamic* trees — page pins, codec header checks,
//! per-node hash lookups. This crate lowers a finished packed tree into
//! one contiguous buffer (flatbush-style: fixed header, per-level slot
//! bounds, structure-of-arrays MBRs, one child/payload index per slot)
//! that is served exactly as it sits on disk:
//!
//! * [`FlatTree::open`] memory-maps a `.flat` file and queries it in
//!   place — no deserialization, no pool, the page cache is the cache;
//! * [`FlatTree::from_bytes`] / [`FlatTree::from_vec`] wrap a borrowed
//!   slice or an owned allocation (Cow-backed, zero-copy when the bytes
//!   are 8-aligned — a misaligned source is *refused*, never UB);
//! * region queries run a stackless level-bounds traversal
//!   ([`query`]) whose per-level candidate scan is the batch SoA
//!   intersection kernel from [`geom::SoaRects`] (4 MBRs per compare).
//!
//! Every buffer is validated on load — magic, version, section layout,
//! level bounds, child-index monotonicity, whole-file checksum — so the
//! query path contains no trust decisions, only bounds-checked reads.

pub mod abi;
mod build;
pub mod query;

use std::borrow::Cow;
use std::path::Path;

use geom::{Point, Rect, SoaRects};
use rtree::{IndexStats, RTree, SpatialIndex};
use storage::Mmap;

pub use abi::{Header, Layout, HEADER_LEN, MAGIC, VERSION};
pub use build::flatten_to_bytes;

/// File-name stem for LSM flat segments: `seg-<id, 8 hex digits>.flat`.
/// One naming scheme shared by the compaction writer, recovery's orphan
/// scan, and the CLI, so a directory listing is unambiguous.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:08x}.flat")
}

/// Inverse of [`segment_file_name`]; `None` for anything that is not a
/// well-formed segment name.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".flat")?;
    if hex.len() != 8 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Errors from building, loading, or serving a flat index.
#[derive(Debug)]
pub enum FlatError {
    /// Reading the source paged tree failed.
    Tree(rtree::RTreeError),
    /// File I/O failure while reading or writing a `.flat` file.
    Io(std::io::Error),
    /// The buffer is not a valid flat index (bad magic/version/layout).
    Parse(String),
    /// The stored whole-buffer checksum does not match the contents.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the buffer.
        computed: u64,
    },
    /// The buffer holds a tree of a different dimension than requested.
    DimsMismatch {
        /// Dimension recorded in the file.
        file: u16,
        /// Dimension of the requested `FlatTree<D>`.
        requested: usize,
    },
    /// The source bytes are not 8-byte aligned, so the zero-copy cast
    /// was refused. Re-load through [`FlatTree::from_vec`] (which
    /// re-aligns by copying) or fix the source allocation.
    Unaligned,
}

impl std::fmt::Display for FlatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlatError::Tree(e) => write!(f, "source tree: {e}"),
            FlatError::Io(e) => write!(f, "I/O: {e}"),
            FlatError::Parse(msg) => write!(f, "invalid flat index: {msg}"),
            FlatError::ChecksumMismatch { stored, computed } => write!(
                f,
                "flat index checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            FlatError::DimsMismatch { file, requested } => {
                write!(f, "flat index is {file}-dimensional, opened as {requested}")
            }
            FlatError::Unaligned => {
                write!(
                    f,
                    "flat index bytes are not 8-byte aligned; zero-copy cast refused"
                )
            }
        }
    }
}

impl std::error::Error for FlatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlatError::Tree(e) => Some(e),
            FlatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtree::RTreeError> for FlatError {
    fn from(e: rtree::RTreeError) -> Self {
        FlatError::Tree(e)
    }
}

impl From<std::io::Error> for FlatError {
    fn from(e: std::io::Error) -> Self {
        FlatError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, FlatError>;

/// Where a flat tree's bytes live.
enum Backing<'a> {
    /// Borrowed or owned bytes, used verbatim (zero-copy).
    Cow(Cow<'a, [u8]>),
    /// Owned 8-aligned storage for sources that arrived misaligned;
    /// the extra `usize` is the live byte length (the `u64` backing
    /// rounds up to a multiple of 8).
    Aligned(Vec<u64>, usize),
    /// A kernel memory mapping of a `.flat` file.
    Mapped(Mmap),
}

impl Backing<'_> {
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Cow(c) => c,
            Backing::Aligned(v, len) => &bytemuck::cast_slice::<u64, u8>(v)[..*len],
            Backing::Mapped(m) => m,
        }
    }
}

/// A loaded flat index of dimension `D`.
///
/// The lifetime `'a` tracks borrowed sources ([`FlatTree::from_bytes`]);
/// owned and memory-mapped trees are `FlatTree<'static, D>`. The handle
/// itself is a parsed header plus the backing bytes — queries read the
/// buffer in place.
pub struct FlatTree<'a, const D: usize> {
    backing: Backing<'a>,
    header: Header,
    /// Per-level `[start, end)` slot bounds, level 0 (items) first.
    bounds: Vec<(usize, usize)>,
}

impl<const D: usize> FlatTree<'static, D> {
    /// Lower a packed paged tree into an owned flat index.
    pub fn from_rtree(tree: &RTree<D>) -> Result<Self> {
        Self::from_vec(flatten_to_bytes(tree)?)
    }

    /// Validate and adopt an owned byte buffer. Zero-copy when the
    /// allocation is 8-byte aligned (the global allocator's norm);
    /// otherwise the bytes are copied once into aligned storage.
    pub fn from_vec(bytes: Vec<u8>) -> Result<Self> {
        if (bytes.as_ptr() as usize).is_multiple_of(8) {
            Self::load(Backing::Cow(Cow::Owned(bytes)))
        } else {
            let mut aligned = vec![0u64; bytes.len().div_ceil(8)];
            let len = bytes.len();
            // SAFETY: destination is a fresh u64 allocation at least
            // `len` bytes long; u8 writes need no alignment.
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), aligned.as_mut_ptr() as *mut u8, len);
            }
            Self::load(Backing::Aligned(aligned, len))
        }
    }

    /// Memory-map the `.flat` file at `path` and serve it in place.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::load(Backing::Mapped(Mmap::map_path(path)?))
    }

    /// Lower `tree` and write the result to `path` (followed by a
    /// re-open + checksum verification of the written bytes), returning
    /// the byte length written.
    pub fn write_file<P: AsRef<Path>>(tree: &RTree<D>, path: P) -> Result<u64> {
        Self::persist(flatten_to_bytes(tree)?, path, false)
    }

    /// The one write path every producer funnels through: validate
    /// `bytes` as a flat index (before anything touches disk), write
    /// them to `path`, and re-open the file so the bytes future serving
    /// trusts — the ones on disk — are the ones verified. With
    /// `durable`, the file and its parent directory are fsynced before
    /// the read-back, which is what the LSM compaction writer needs
    /// before it may commit a catalog flip referencing the segment.
    pub fn persist<P: AsRef<Path>>(bytes: Vec<u8>, path: P, durable: bool) -> Result<u64> {
        let tree = Self::from_vec(bytes)?;
        let len = tree.as_bytes().len() as u64;
        let path = path.as_ref();
        std::fs::write(path, tree.as_bytes())?;
        if durable {
            std::fs::File::open(path)?.sync_all()?;
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::File::open(dir)?.sync_all()?;
            }
        }
        // Read-back validation: the file on disk, not our buffer, is
        // what future serving trusts.
        Self::open(path)?;
        Ok(len)
    }
}

impl<'a, const D: usize> FlatTree<'a, D> {
    /// Validate and wrap a borrowed byte buffer, zero-copy.
    ///
    /// The slice must be 8-byte aligned (mmap pages and `u64`-backed
    /// allocations always are); a misaligned slice is refused with
    /// [`FlatError::Unaligned`] rather than copied, since the caller
    /// chose the borrowed path for zero-copy semantics.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<Self> {
        Self::load(Backing::Cow(Cow::Borrowed(bytes)))
    }

    fn load(backing: Backing<'a>) -> Result<Self> {
        let bytes = backing.bytes();
        if !(bytes.as_ptr() as usize).is_multiple_of(8) {
            return Err(FlatError::Unaligned);
        }
        let header = Header::parse(bytes)?;
        if header.dims as usize != D {
            return Err(FlatError::DimsMismatch {
                file: header.dims,
                requested: D,
            });
        }
        let bounds = Self::parse_bounds(bytes, &header)?;
        let tree = Self {
            backing,
            header,
            bounds,
        };
        tree.validate_indices()?;
        Ok(tree)
    }

    /// Decode and validate the level-bounds table: levels must tile
    /// `[0, num_nodes)` gap-free starting with the items level, every
    /// node level must be non-empty, and the top level is one root slot.
    fn parse_bounds(bytes: &[u8], header: &Header) -> Result<Vec<(usize, usize)>> {
        let layout = header.layout();
        let table: &[u64] = cast_section(
            bytes,
            layout.bounds_off(),
            layout.coords_off() - layout.bounds_off(),
        )?;
        let mut bounds = Vec::with_capacity(layout.num_levels);
        for k in 0..layout.num_levels {
            bounds.push((table[2 * k] as usize, table[2 * k + 1] as usize));
        }
        if bounds[0] != (0, header.num_items as usize) {
            return Err(FlatError::Parse(format!(
                "items level bounds {:?} != [0, {})",
                bounds[0], header.num_items
            )));
        }
        for k in 1..bounds.len() {
            if bounds[k].0 != bounds[k - 1].1 {
                return Err(FlatError::Parse(format!(
                    "level {k} starts at {} but level {} ends at {}",
                    bounds[k].0,
                    k - 1,
                    bounds[k - 1].1
                )));
            }
            if bounds[k].0 >= bounds[k].1 {
                return Err(FlatError::Parse(format!(
                    "node level {k} is empty ({:?})",
                    bounds[k]
                )));
            }
        }
        let top = *bounds.last().unwrap();
        if top.1 - top.0 != 1 {
            return Err(FlatError::Parse(format!(
                "top level holds {} slots, expected exactly the root",
                top.1 - top.0
            )));
        }
        if top.1 != header.num_nodes as usize {
            return Err(FlatError::Parse(format!(
                "levels end at slot {} but num_nodes is {}",
                top.1, header.num_nodes
            )));
        }
        Ok(bounds)
    }

    /// Validate the child-index array so traversal needs no per-slot
    /// range checks: within every internal level the indices are
    /// non-decreasing, start exactly at the child level's first slot,
    /// and never point past its end.
    fn validate_indices(&self) -> Result<()> {
        let idx = self.idx();
        for k in 1..self.bounds.len() {
            let (lo, hi) = self.bounds[k];
            let (child_lo, child_hi) = self.bounds[k - 1];
            if idx[lo] as usize != child_lo {
                return Err(FlatError::Parse(format!(
                    "level {k} first child index {} != child level start {child_lo}",
                    idx[lo]
                )));
            }
            let mut prev = child_lo;
            for (slot, &i) in idx[lo..hi].iter().enumerate() {
                let i = i as usize;
                if i < prev || i > child_hi {
                    return Err(FlatError::Parse(format!(
                        "level {k} slot {} child index {i} outside [{prev}, {child_hi}]",
                        lo + slot
                    )));
                }
                prev = i;
            }
        }
        Ok(())
    }

    // ---- accessors ---------------------------------------------------

    /// The raw validated buffer (e.g. for writing to a file).
    pub fn as_bytes(&self) -> &[u8] {
        self.backing.bytes()
    }

    /// Parsed header copy.
    pub fn header(&self) -> Header {
        self.header
    }

    /// Number of data items.
    pub fn len(&self) -> u64 {
        self.header.num_items
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.header.num_items == 0
    }

    /// Level count, items level included.
    pub fn num_levels(&self) -> usize {
        self.bounds.len()
    }

    /// Per-level `[start, end)` slot bounds, items level first.
    pub fn level_bounds(&self) -> &[(usize, usize)] {
        &self.bounds
    }

    /// Whether the backing is a kernel memory mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// MBR of the whole index (empty rect when no items).
    pub fn root_mbr(&self) -> Rect<D> {
        let root = self.bounds.last().unwrap().0;
        self.soa().get(root)
    }

    /// SoA view over every slot's MBR (all levels; slot index = global).
    pub(crate) fn soa(&self) -> SoaRects<'_, D> {
        let bytes = self.backing.bytes();
        let layout = self.header.layout();
        let n = layout.num_nodes * 8;
        SoaRects::new(
            std::array::from_fn(|a| {
                cast_section::<f64>(bytes, layout.axis_min_off(a), n).expect("validated at load")
            }),
            std::array::from_fn(|a| {
                cast_section::<f64>(bytes, layout.axis_max_off(a), n).expect("validated at load")
            }),
        )
    }

    /// The idx array: child-range starts for node slots, payloads for
    /// item slots.
    pub(crate) fn idx(&self) -> &[u64] {
        let bytes = self.backing.bytes();
        let layout = self.header.layout();
        cast_section::<u64>(bytes, layout.idx_off(), layout.num_nodes * 8)
            .expect("validated at load")
    }

    // ---- queries -----------------------------------------------------

    /// All items whose MBR intersects `query` (closed boundaries),
    /// as `(rect, payload)` pairs — the flat counterpart of
    /// [`RTree::query_region`].
    pub fn query_region(&self, query: &Rect<D>) -> Vec<(Rect<D>, u64)> {
        let mut out = Vec::new();
        self.for_each_in_region(query, |rect, payload| out.push((rect, payload)));
        out
    }

    /// Visit every item intersecting `query` without materializing a
    /// result vector.
    pub fn for_each_in_region<F: FnMut(Rect<D>, u64)>(&self, query: &Rect<D>, visit: F) {
        query::for_each_in_region(self, query, visit);
    }

    /// All items whose MBR contains `point`.
    pub fn query_point(&self, point: &Point<D>) -> Vec<(Rect<D>, u64)> {
        self.query_region(&Rect::from_point(*point))
    }

    /// Every `(rect, payload)` item in slot order — for the items level
    /// of an STR-packed source that is Hilbert/packing order, which is
    /// exactly what a compaction merge wants to drain.
    pub fn items(&self) -> impl Iterator<Item = (Rect<D>, u64)> + '_ {
        let soa = self.soa();
        let idx = self.idx();
        (0..self.header.num_items as usize).map(move |i| (soa.get(i), idx[i]))
    }
}

impl<const D: usize> SpatialIndex<D> for FlatTree<'_, D> {
    fn for_each_intersecting(
        &self,
        query: &Rect<D>,
        visit: &mut dyn FnMut(Rect<D>, u64),
    ) -> rtree::Result<()> {
        self.for_each_in_region(query, |rect, id| visit(rect, id));
        Ok(())
    }

    fn query(&self, query: &Rect<D>) -> rtree::Result<Vec<(Rect<D>, u64)>> {
        Ok(self.query_region(query))
    }

    fn len(&self) -> u64 {
        FlatTree::len(self)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            backend: "flat",
            len: FlatTree::len(self),
            levels: self.bounds.len() as u32,
        }
    }
}

impl<const D: usize> std::fmt::Debug for FlatTree<'_, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatTree")
            .field("dims", &D)
            .field("items", &self.header.num_items)
            .field("levels", &self.bounds.len())
            .field("bytes", &self.header.total_len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod segment_name_tests {
    use super::*;

    #[test]
    fn segment_names_round_trip() {
        for id in [0u64, 1, 42, 0xffff_ffff] {
            let name = segment_file_name(id);
            assert_eq!(parse_segment_file_name(&name), Some(id));
        }
        assert_eq!(segment_file_name(0x2a), "seg-0000002a.flat");
        for bad in [
            "seg-.flat",
            "seg-1.flat",
            "seg-0000002a.flat.tmp",
            "wal-0000002a.flat",
            "seg-0000002g.flat",
            "seg-000000000.flat",
        ] {
            assert_eq!(parse_segment_file_name(bad), None, "{bad}");
        }
    }
}

/// Cast `len` bytes at `off` to a typed slice, mapping every cast
/// failure (range, alignment, slop) to a clean [`FlatError`].
fn cast_section<T: bytemuck::Pod>(bytes: &[u8], off: usize, len: usize) -> Result<&[T]> {
    let end = off.checked_add(len).ok_or(FlatError::Unaligned)?;
    let section = bytes
        .get(off..end)
        .ok_or_else(|| FlatError::Parse(format!("section [{off}, {end}) out of bounds")))?;
    bytemuck::try_cast_slice(section).map_err(|e| match e {
        bytemuck::PodCastError::TargetAlignmentGreaterAndInputNotAligned => FlatError::Unaligned,
        other => FlatError::Parse(format!("section cast failed: {other}")),
    })
}
