//! Stackless level-bounds traversal over the flat layout.
//!
//! Instead of a recursion/explicit stack over nodes, the traversal
//! keeps one *range list* per level: the candidate slot ranges that
//! survived the parent level's pruning. Each step runs the batch SoA
//! intersection kernel over those ranges and maps every hit to its
//! contiguous child range; adjacent child ranges are coalesced so
//! sibling survivors merge into one long kernel run — which is where
//! the SoA layout pays off, because the kernel then streams rectangles
//! 4 at a time from gap-free arrays. The final range list lies in the
//! items level; hits there are results.
//!
//! Prune-equivalence with the paged tree: the paged query tests parent
//! *entry* rectangles, the flat query tests child *node* MBRs — equal
//! by the tree validator's tightness invariant — so both traversals
//! visit the same node set and return identical results.

use crate::FlatTree;
use geom::Rect;
use obs::{LazyCounter, LazyHistogram};

// Mirrors the paged tier's rtree.query.* instrumentation so A/B runs
// can read both sides from one obs snapshot. Counting happens in
// locals; atomics are touched once per query, and only when enabled.
static QUERIES: LazyCounter = LazyCounter::new("flat.queries");
static SLOTS_SCANNED: LazyHistogram = LazyHistogram::new("flat.query.slots_scanned");
static HITS: LazyHistogram = LazyHistogram::new("flat.query.hits");
static LATENCY_NS: LazyHistogram = LazyHistogram::new("flat.query.latency_ns");

/// Visit every item whose MBR intersects `query`, in slot order.
pub(crate) fn for_each_in_region<const D: usize, F: FnMut(Rect<D>, u64)>(
    tree: &FlatTree<'_, D>,
    query: &Rect<D>,
    mut visit: F,
) {
    let timer = LATENCY_NS.start();
    let _tspan = obs::trace::span("flat.query");
    let track = obs::enabled();
    let mut scanned: u64 = 0;
    let mut hits: u64 = 0;

    let soa = tree.soa();
    let idx = tree.idx();
    let bounds = tree.level_bounds();
    let top = bounds.len() - 1;

    // Candidate ranges at the current level, starting from the root
    // slot. Double-buffered: `ranges` is level k, `next` collects k-1.
    let mut ranges: Vec<(usize, usize)> = vec![bounds[top]];
    let mut next: Vec<(usize, usize)> = Vec::new();

    for k in (1..=top).rev() {
        let (level_lo, level_hi) = bounds[k];
        let child_hi = bounds[k - 1].1;
        debug_assert_eq!(child_hi, level_lo, "levels tile the slot space");
        next.clear();
        for &(s, e) in &ranges {
            debug_assert!(level_lo <= s && e <= level_hi);
            if track {
                scanned += (e - s) as u64;
            }
            soa.for_each_intersecting(s, e, query, &mut |i| {
                let c0 = idx[i] as usize;
                let c1 = if i + 1 < level_hi {
                    idx[i + 1] as usize
                } else {
                    child_hi
                };
                // Coalesce with the previous surviving sibling so the
                // child level scans one long run instead of many short
                // ones.
                match next.last_mut() {
                    Some(last) if last.1 == c0 => last.1 = c1,
                    _ => next.push((c0, c1)),
                }
            });
        }
        std::mem::swap(&mut ranges, &mut next);
    }

    // `ranges` now lies in the items level: hits are results.
    for &(s, e) in &ranges {
        if track {
            scanned += (e - s) as u64;
        }
        soa.for_each_intersecting(s, e, query, &mut |i| {
            hits += 1;
            visit(soa.get(i), idx[i]);
        });
    }

    if track {
        QUERIES.inc();
        SLOTS_SCANNED.record(scanned);
        HITS.record(hits);
    }
    drop(timer);
}
