//! The operations behind each subcommand.

use std::path::Path;
use std::sync::Arc;

use rtree::{NodeCapacity, RTree, SpatialIndex};
use storage::{BufferPool, FileDisk, DEFAULT_PAGE_SIZE};
use str_core::{PackingOrder, TgsPacker, TreeMetrics};

use storage::BufferStats;

use crate::{csvio, CliResult};

/// Render one [`BufferStats`] as a JSON object (shared by `--metrics
/// json` outputs so the schema matches the bench artifacts).
pub fn buffer_stats_json(s: &BufferStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"writebacks\": {}, \"coalesced\": {}}}",
        s.hits, s.misses, s.evictions, s.writebacks, s.coalesced
    )
}

/// Which packing algorithm a `--packer` flag names.
pub fn parse_packer(name: &str) -> CliResult<Box<dyn PackingOrder<2>>> {
    match name.to_ascii_lowercase().as_str() {
        "str" => Ok(Box::new(str_core::StrPacker::new())),
        "str-par" | "str-parallel" => Ok(Box::new(str_core::StrPacker::parallel())),
        "hs" | "hilbert" => Ok(Box::new(str_core::HilbertPacker::new())),
        "nx" | "nearest-x" => Ok(Box::new(str_core::NearestXPacker::new())),
        "tgs" => Ok(Box::new(TgsPacker::new())),
        other => Err(format!(
            "unknown packer '{other}' (expected str, str-par, hs, nx, tgs)"
        )),
    }
}

/// Open one named tree of an existing index file behind a buffer of
/// `buffer` pages.
pub fn open_index(path: &Path, buffer: usize, tree: &str) -> CliResult<RTree<2>> {
    let disk = Arc::new(
        FileDisk::open(path, DEFAULT_PAGE_SIZE).map_err(|e| format!("{}: {e}", path.display()))?,
    );
    let pool = Arc::new(BufferPool::new(disk, buffer.max(1)));
    RTree::open_named(pool, tree).map_err(|e| format!("{}: {e}", path.display()))
}

/// `build`: pack a CSV of rectangles into an index file.
///
/// `external_budget` > 0 switches STR to the out-of-core pipeline with
/// that many records of sort memory (ignored for other packers, which
/// have no streaming formulation); `threads` > 1 additionally runs the
/// pipeline's parallel run formation, scatter and per-slab pack — the
/// resulting file is byte-identical to the single-threaded build.
///
/// With `tree: Some(name)` the pack targets that catalog entry: if
/// `output` already exists it is opened (not truncated), so several
/// named trees can be packed into one file. Without `--tree` the file
/// is created from scratch and the tree lands under the default name.
pub fn build(
    input: &Path,
    output: &Path,
    packer_name: &str,
    capacity: usize,
    external_budget: usize,
    threads: usize,
    tree: Option<&str>,
) -> CliResult<String> {
    let items = csvio::read_items(input)?;
    if items.is_empty() {
        return Err(format!("{}: no rectangles", input.display()));
    }
    let packer = parse_packer(packer_name)?;
    let cap = NodeCapacity::new(capacity)
        .ok_or_else(|| format!("invalid capacity {capacity} (need >= 2)"))?;
    let name = tree.unwrap_or(rtree::DEFAULT_TREE);
    let disk = Arc::new(if tree.is_some() && output.exists() {
        FileDisk::open(output, DEFAULT_PAGE_SIZE)
            .map_err(|e| format!("{}: {e}", output.display()))?
    } else {
        FileDisk::create(output, DEFAULT_PAGE_SIZE)
            .map_err(|e| format!("{}: {e}", output.display()))?
    });
    let pool = Arc::new(BufferPool::new(disk, 1024));
    let n = items.len();
    let mut tree = if external_budget > 0 && packer_name.starts_with("str") {
        let scratch = Arc::new(storage::MemDisk::default_size());
        let opts = str_core::ExternalPackOptions::new(external_budget).threads(threads);
        str_core::pack_str_external_opts(pool, name, scratch, items, cap, opts)
            .map_err(|e| e.to_string())?
    } else {
        str_core::pack_named(pool, name, items, cap, packer.as_ref()).map_err(|e| e.to_string())?
    };
    tree.persist().map_err(|e| e.to_string())?;
    Ok(format!(
        "packed {n} rectangles with {} into {} tree '{name}' ({} levels, {} pages)",
        packer.name(),
        output.display(),
        tree.height(),
        tree.node_count().map_err(|e| e.to_string())?
    ))
}

/// Default sibling path for a flattened tree: `<index>.<tree>.flat`.
pub fn default_flat_path(index: &Path, tree_name: &str) -> std::path::PathBuf {
    let mut os = index.as_os_str().to_os_string();
    os.push(format!(".{tree_name}.flat"));
    std::path::PathBuf::from(os)
}

/// `flatten`: lower a named tree into a flat zero-copy serving file
/// (see the `flat` crate for the wire layout). The file lands next to
/// the index as `<index>.<tree>.flat` unless `--out` says otherwise,
/// and is re-opened and checksum-verified before reporting success.
pub fn flatten(index: &Path, tree_name: &str, out: Option<&Path>) -> CliResult<String> {
    let tree = open_index(index, 1024, tree_name)?;
    let path = out
        .map(Path::to_path_buf)
        .unwrap_or_else(|| default_flat_path(index, tree_name));
    let written = flat::FlatTree::write_file(&tree, &path).map_err(|e| e.to_string())?;
    Ok(format!(
        "flattened tree '{tree_name}' ({} rectangles, {} levels) into {} ({written} bytes)",
        tree.len(),
        tree.height() + 1,
        path.display()
    ))
}

/// Run a region query against any [`SpatialIndex`] backend and render
/// the hits as CSV plus a `#` summary line. The summary reports buffer
/// I/O when the backend is paged and the backend name either way, so
/// the paged, flat and LSM tiers all answer through this one path.
pub fn run_region_query(index: &dyn SpatialIndex<2>, region: &geom::Rect2) -> CliResult<String> {
    let before = index.buffer_stats().unwrap_or_default();
    let hits = index.query(region).map_err(|e| e.to_string())?;
    let stats = index.stats();
    let mut out = String::new();
    for (r, id) in &hits {
        out.push_str(&format!(
            "{},{},{},{},{id}\n",
            r.lo(0),
            r.lo(1),
            r.hi(0),
            r.hi(1)
        ));
    }
    match index.buffer_stats() {
        Some(after) => {
            let io = after.since(&before);
            out.push_str(&format!(
                "# {} hits, {} disk accesses, {} buffer hits\n",
                hits.len(),
                io.misses,
                io.hits
            ));
        }
        None => out.push_str(&format!(
            "# {} hits, {} backend ({} items, {} levels)\n",
            hits.len(),
            stats.backend,
            stats.len,
            stats.levels
        )),
    }
    Ok(out)
}

/// `query --flat` / `point --flat`: serve a region query from a flat
/// file, mmap'ed zero-copy — no buffer pool, no page decoding.
pub fn query_region_flat(path: &Path, region: geom::Rect2) -> CliResult<String> {
    let flat = flat::FlatTree::<2>::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = run_region_query(&flat, &region)?;
    out.push_str(&format!(
        "# served {}\n",
        if flat.is_mapped() {
            "mmap"
        } else {
            "heap copy"
        }
    ));
    Ok(out)
}

/// The three files/directories of an on-disk LSM tree under `dir`:
/// superblock+meta disk, WAL directory, segment directory.
fn open_lsm_parts(
    dir: &Path,
) -> CliResult<(
    Arc<dyn storage::Disk>,
    Arc<dyn storage::LogStore>,
    Arc<dyn lsm::SegmentStore>,
)> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let index = dir.join("index.v2");
    let disk: Arc<dyn storage::Disk> = Arc::new(
        if index.exists() {
            FileDisk::open(&index, DEFAULT_PAGE_SIZE)
        } else {
            FileDisk::create(&index, DEFAULT_PAGE_SIZE)
        }
        .map_err(|e| format!("{}: {e}", index.display()))?,
    );
    let log: Arc<dyn storage::LogStore> = storage::FileLogStore::open(dir.join("wal"))
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    let segs: Arc<dyn lsm::SegmentStore> = Arc::new(
        lsm::FileSegmentStore::open(dir.join("segments"))
            .map_err(|e| format!("{}: {e}", dir.display()))?,
    );
    Ok((disk, log, segs))
}

/// Open (or create) the LSM tree stored under `dir`, running recovery.
pub fn open_lsm(dir: &Path, opts: lsm::LsmOptions) -> CliResult<lsm::LsmTree<2>> {
    let (disk, log, segs) = open_lsm_parts(dir)?;
    lsm::LsmTree::open(disk, log, segs, opts).map_err(|e| format!("{}: {e}", dir.display()))
}

/// `query --lsm` / `point --lsm`: answer from an LSM directory.
pub fn query_region_lsm(dir: &Path, region: geom::Rect2) -> CliResult<String> {
    let tree = open_lsm(dir, lsm::LsmOptions::default())?;
    run_region_query(&tree, &region)
}

/// `build --lsm`: ingest a CSV of rectangles into an LSM directory via
/// the durable insert path (every batch WAL-committed), then flush so
/// everything is segment-resident. Unlike `build --output`, this is
/// incremental — running it twice adds both files' rectangles.
pub fn build_lsm(input: &Path, dir: &Path, capacity: usize, threads: usize) -> CliResult<String> {
    let items = csvio::read_items(input)?;
    if items.is_empty() {
        return Err(format!("{}: no rectangles", input.display()));
    }
    let cap = NodeCapacity::new(capacity)
        .ok_or_else(|| format!("invalid capacity {capacity} (need >= 2)"))?;
    let opts = lsm::LsmOptions {
        capacity: cap,
        threads: threads.max(1),
        ..lsm::LsmOptions::default()
    };
    let tree = open_lsm(dir, opts)?;
    let n = items.len();
    for batch in items.chunks(1024) {
        tree.insert_batch(batch).map_err(|e| e.to_string())?;
    }
    tree.flush().map_err(|e| e.to_string())?;
    let st = tree.stats();
    Ok(format!(
        "ingested {n} rectangles into {} ({} items across {} flat level(s), {} compaction(s))",
        dir.display(),
        st.level_items,
        st.levels,
        st.compactions
    ))
}

/// `trees`: list every named tree in the file's catalog.
pub fn trees(index: &Path) -> CliResult<String> {
    let disk: Arc<dyn storage::Disk> = Arc::new(
        FileDisk::open(index, DEFAULT_PAGE_SIZE)
            .map_err(|e| format!("{}: {e}", index.display()))?,
    );
    let alloc = storage::PageAllocator::open(disk.clone())
        .map_err(|e| format!("{}: {e}", index.display()))?;
    let mut out = format!(
        "{:<24} {:<8} {:>4} {:>8} {:>10} {:>7}\n",
        "tree", "kind", "dims", "capacity", "entries", "height"
    );
    for entry in alloc.trees() {
        let meta = rtree::read_tree_meta(disk.as_ref(), &alloc, &entry.name)
            .map_err(|e| format!("{}: tree '{}': {e}", index.display(), entry.name))?;
        out.push_str(&format!(
            "{:<24} {:<8} {:>4} {:>8} {:>10} {:>7}\n",
            entry.name,
            rtree::kind_name(meta.kind),
            meta.dims,
            meta.cap_max,
            meta.len,
            meta.height
        ));
    }
    out.push_str(&format!(
        "{} tree(s), {} free page(s)\n",
        alloc.trees().len(),
        alloc.free_count()
    ));
    Ok(out)
}

/// `gen`: generate a named data set as CSV.
pub fn generate(dataset: &str, n: usize, seed: u64, output: &Path) -> CliResult<String> {
    let ds = match dataset.to_ascii_lowercase().as_str() {
        "uniform" | "points" => datagen::synthetic::synthetic_points(n, seed),
        "squares" => datagen::synthetic::synthetic_squares(n, 5.0, seed),
        "tiger" | "gis" => datagen::tiger::tiger_like(n, seed),
        "vlsi" => datagen::vlsi::vlsi_like(n, seed),
        "cfd" => datagen::cfd::cfd_like(n, seed),
        other => {
            return Err(format!(
                "unknown dataset '{other}' (expected uniform, squares, tiger, vlsi, cfd)"
            ))
        }
    };
    csvio::write_items(output, &ds.items())?;
    Ok(format!(
        "wrote {} rectangles to {}",
        ds.len(),
        output.display()
    ))
}

/// Counter value of `name` in `snap`, 0 if absent.
fn counter_value(snap: &obs::Snapshot, name: &str) -> u64 {
    match snap.get(name) {
        Some(obs::MetricValue::Counter(v)) => *v,
        _ => 0,
    }
}

/// `query`: region query with I/O accounting.
pub fn query_region(
    index: &Path,
    region: geom::Rect2,
    buffer: usize,
    tree_name: &str,
) -> CliResult<String> {
    let tree = open_index(index, buffer, tree_name)?;
    // Registry delta measured around exactly the traced window, so the
    // root span's pages_read must equal it (index-open reads excluded
    // from both).
    let reads_before = counter_value(&obs::snapshot(), "disk.reads");
    let span = obs::trace::span("cli.query");
    let root_span_id = span.as_ref().map(|s| s.id());
    let mut out = run_region_query(&tree, &region)?;
    drop(span);
    let reads_delta = counter_value(&obs::snapshot(), "disk.reads") - reads_before;
    if let Some(span_id) = root_span_id {
        let dump = obs::trace::dump();
        if let Some(root) = dump.iter().find(|r| r.span == span_id) {
            out.push_str(&format!(
                "# trace: pages_read={} physical_reads_delta={}\n",
                root.io.pages_read, reads_delta
            ));
        }
    }
    Ok(out)
}

/// `knn`: k nearest neighbours of a point.
pub fn knn(
    index: &Path,
    at: geom::Point2,
    k: usize,
    buffer: usize,
    tree_name: &str,
) -> CliResult<String> {
    let tree = open_index(index, buffer, tree_name)?;
    let nn = tree.nearest(&at, k).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (r, id, dist) in nn {
        out.push_str(&format!(
            "{},{},{},{},{id},{dist:.6}\n",
            r.lo(0),
            r.lo(1),
            r.hi(0),
            r.hi(1)
        ));
    }
    Ok(out)
}

/// `stats`: per-level summary plus quality metrics.
pub fn stats(index: &Path, tree_name: &str) -> CliResult<String> {
    let tree = open_index(index, 256, tree_name)?;
    let summary = tree.summary().map_err(|e| e.to_string())?;
    let metrics = TreeMetrics::compute(&tree).map_err(|e| e.to_string())?;
    let mut out = format!(
        "rectangles : {}\nheight     : {}\npages      : {}\nutilization: {:.1}%\n",
        tree.len(),
        tree.height(),
        metrics.nodes,
        metrics.utilization * 100.0
    );
    out.push_str(&format!(
        "leaf  area {:.4}  perimeter {:.2}\ntotal area {:.4}  perimeter {:.2}\n",
        metrics.leaf_area, metrics.leaf_perimeter, metrics.total_area, metrics.total_perimeter
    ));
    out.push_str("level  nodes  entries  area        perimeter\n");
    for l in &summary.levels {
        out.push_str(&format!(
            "{:<6} {:<6} {:<8} {:<11.4} {:.2}\n",
            l.level, l.nodes, l.entries, l.area_sum, l.perimeter_sum
        ));
    }
    Ok(out)
}

/// `validate`: check structural invariants.
pub fn validate(index: &Path, tree_name: &str) -> CliResult<String> {
    let tree = open_index(index, 256, tree_name)?;
    tree.validate(false).map_err(|e| e.to_string())?;
    Ok(format!(
        "{}: OK ({} rectangles, {} levels)",
        index.display(),
        tree.len(),
        tree.height()
    ))
}

/// `check`: fsck-style page walk — verifies that every reachable page
/// decodes (magic, checksum, truncation), that levels step down by one,
/// and that child MBRs stay inside what their parents recorded; reports
/// unreachable pages. On a v2 file it also audits the page allocator:
/// the free-list chain is walked and cross-checked against reachability,
/// so leaked pages (allocated but unreachable from any catalogued tree)
/// and double-frees surface here. Unlike `validate`, it collects every
/// problem instead of stopping at the first, so a damaged index yields a
/// full damage report (and a non-zero exit).
pub fn check(index: &Path, tree_name: &str) -> CliResult<String> {
    let tree = open_index(index, 256, tree_name)?;
    let report = tree.check();
    if report.is_clean() {
        Ok(format!("{}:\n{report}", index.display()))
    } else {
        Err(format!("{}:\n{report}", index.display()))
    }
}

/// The sibling WAL directory for an index file: `<index>.wal/`. Every
/// command that touches the durable write path derives it the same way,
/// so the pair always travels together.
pub fn default_wal_dir(index: &Path) -> std::path::PathBuf {
    let mut os = index.as_os_str().to_os_string();
    os.push(".wal");
    std::path::PathBuf::from(os)
}

/// `wal-stat`: offline summary of the index's write-ahead log — segment
/// inventory, committed-transaction count, LSN range, the superblock
/// watermark, and how many transactions a recovery would replay.
pub fn wal_stat(index: &Path) -> CliResult<String> {
    let dir = default_wal_dir(index);
    if !dir.is_dir() {
        return Ok(format!("{}: no WAL directory", dir.display()));
    }
    let store = storage::FileLogStore::open(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let scan = storage::wal::scan(store.as_ref()).map_err(|e| e.to_string())?;
    let disk: Arc<dyn storage::Disk> = Arc::new(
        FileDisk::open(index, DEFAULT_PAGE_SIZE)
            .map_err(|e| format!("{}: {e}", index.display()))?,
    );
    let watermark = storage::PageAllocator::open(disk)
        .map_err(|e| e.to_string())?
        .wal_applied_lsn();
    let pending = scan.txns.iter().filter(|t| t.lsn > watermark).count();
    let mut out = format!(
        "{}: {} segment(s), {} record(s), {} valid byte(s)\n",
        dir.display(),
        scan.segments,
        scan.records,
        scan.valid_bytes
    );
    match (scan.txns.first(), scan.txns.last()) {
        (Some(first), Some(last)) => out.push_str(&format!(
            "committed txns: {} (lsn {}..={})\n",
            scan.txns.len(),
            first.lsn,
            last.lsn
        )),
        _ => out.push_str("committed txns: 0\n"),
    }
    out.push_str(&format!(
        "superblock watermark: lsn {watermark}; {pending} txn(s) pending replay\n"
    ));
    if let Some(torn) = &scan.torn {
        out.push_str(&format!("torn tail: {torn}\n"));
    }
    Ok(out)
}

/// `recover`: replay the sibling WAL into the index (idempotent redo
/// past the superblock watermark), sweep stranded pages back to the
/// free chain, and reset the log. Safe to run on a clean index — it
/// reports a no-op.
pub fn recover(index: &Path) -> CliResult<String> {
    let disk: Arc<dyn storage::Disk> = Arc::new(
        FileDisk::open(index, DEFAULT_PAGE_SIZE)
            .map_err(|e| format!("{}: {e}", index.display()))?,
    );
    let dir = default_wal_dir(index);
    let store = storage::FileLogStore::open(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let report = rtree::recover(&disk, store.as_ref()).map_err(|e| e.to_string())?;
    Ok(format!("{}: {report}", index.display()))
}

/// `dump-leaves`: leaf MBRs as CSV (plot fodder, as in the paper's
/// Figures 2–4).
pub fn dump_leaves(index: &Path, tree_name: &str) -> CliResult<String> {
    let tree = open_index(index, 256, tree_name)?;
    let leaves = tree.level_mbrs(0).map_err(|e| e.to_string())?;
    let mut out = String::from("xmin,ymin,xmax,ymax\n");
    for mbr in leaves {
        out.push_str(&format!(
            "{},{},{},{}\n",
            mbr.lo(0),
            mbr.lo(1),
            mbr.hi(0),
            mbr.hi(1)
        ));
    }
    Ok(out)
}

/// `compare`: pack the input with every packer and print a quality/IO
/// comparison table — the paper's experiment, on the user's own data.
pub fn compare(input: &Path, capacity: usize, buffer: usize) -> CliResult<String> {
    use std::sync::Arc as StdArc;
    let items = csvio::read_items(input)?;
    if items.is_empty() {
        return Err(format!("{}: no rectangles", input.display()));
    }
    let cap = NodeCapacity::new(capacity).ok_or_else(|| format!("invalid capacity {capacity}"))?;
    // Paper-style probes over the data's bounding box.
    let bbox = geom::Rect2::union_all(items.iter().map(|(r, _)| r));
    let side = 0.1 * bbox.extent(0).max(bbox.extent(1));
    let points = datagen::point_queries(1000, &bbox, 11);
    let regions = datagen::region_queries(1000, &bbox, side, 12);

    let mut out = format!(
        "{:<8} {:>8} {:>8} {:>12} {:>12} {:>12}\n",
        "packer", "pages", "util%", "leaf perim", "pt acc", "1% acc"
    );
    for name in ["str", "hs", "nx", "tgs"] {
        let packer = parse_packer(name)?;
        let disk = StdArc::new(storage::MemDisk::default_size());
        let pool = StdArc::new(BufferPool::new(disk, 1024));
        let tree =
            str_core::pack(pool, items.clone(), cap, packer.as_ref()).map_err(|e| e.to_string())?;
        let m = TreeMetrics::compute(&tree).map_err(|e| e.to_string())?;
        let pool = tree.pool();
        pool.set_capacity(buffer.max(1))
            .map_err(|e| e.to_string())?;
        pool.reset_stats();
        for p in &points {
            tree.query_point(p).map_err(|e| e.to_string())?;
        }
        let pt_acc = pool.stats().misses as f64 / points.len() as f64;
        pool.set_capacity(buffer.max(1))
            .map_err(|e| e.to_string())?;
        pool.reset_stats();
        for q in &regions {
            tree.query_region_visit(q, &mut |_, _| {})
                .map_err(|e| e.to_string())?;
        }
        let rg_acc = pool.stats().misses as f64 / regions.len() as f64;
        out.push_str(&format!(
            "{:<8} {:>8} {:>8.1} {:>12.2} {:>12.2} {:>12.2}\n",
            packer.name(),
            m.nodes,
            m.utilization * 100.0,
            m.leaf_perimeter,
            pt_acc,
            rg_acc
        ));
    }
    Ok(out)
}

/// `query-bench`: serve a mixed query batch through the parallel
/// executor at increasing thread counts and report throughput scaling.
///
/// The index is opened behind a *sharded* pool sized for `threads`
/// workers; the same batch is replayed cold (pool cleared, stats reset)
/// at 1, 2, … up to `threads` workers, so the printed speedups isolate
/// the serving engine rather than cache warm-up luck.
///
/// `metrics` selects the observability rendering: `""` keeps the plain
/// table, `"text"` appends per-run latency percentiles, per-shard
/// buffer counters and the metric registry, `"json"` replaces the
/// table with one JSON document carrying all of it.
pub fn query_bench(
    index: &Path,
    queries: usize,
    threads: usize,
    buffer: usize,
    seed: u64,
    metrics: &str,
    tree_name: &str,
) -> CliResult<String> {
    use rtree::{BatchQuery, QueryExecutor};

    let threads = threads.max(1);
    let disk = Arc::new(
        FileDisk::open(index, DEFAULT_PAGE_SIZE)
            .map_err(|e| format!("{}: {e}", index.display()))?,
    );
    let pool = Arc::new(storage::ShardedBufferPool::for_threads(
        disk,
        buffer.max(1),
        threads,
    ));
    let tree =
        RTree::open_named(pool, tree_name).map_err(|e| format!("{}: {e}", index.display()))?;
    let bbox = tree.root_mbr().map_err(|e| e.to_string())?;
    let side = 0.05 * bbox.extent(0).max(bbox.extent(1));

    let mut batch: Vec<BatchQuery<2>> = Vec::with_capacity(queries);
    for p in datagen::point_queries(queries / 3, &bbox, seed) {
        batch.push(BatchQuery::Point(p));
    }
    for r in datagen::region_queries(queries - queries / 3, &bbox, side, seed + 1) {
        batch.push(BatchQuery::Region(r));
    }

    let exec = QueryExecutor::new(&tree);
    let mut out = format!(
        "{} queries, {}-page pool, {} shards\n{:<8} {:>12} {:>10} {:>10} {:>10}\n",
        batch.len(),
        buffer.max(1),
        tree.pool().shard_count(),
        "threads",
        "queries/s",
        "speedup",
        "hit rate",
        "disk acc"
    );
    let mut base = None;
    let mut t = 1;
    // (report, per-shard stats for that run) — the pool counters are
    // reset before every run, so a post-run per-shard snapshot is
    // exactly that run's traffic.
    let mut runs = Vec::new();
    while t <= threads {
        tree.pool().clear().map_err(|e| e.to_string())?;
        tree.pool().reset_stats();
        let report = exec.run_batch(&batch, t).map_err(|e| e.to_string())?;
        let per_shard = tree.pool().per_shard_stats();
        let qps = report.throughput();
        let base_qps = *base.get_or_insert(qps);
        out.push_str(&format!(
            "{:<8} {:>12.0} {:>9.2}x {:>9.1}% {:>10}\n",
            report.threads,
            qps,
            qps / base_qps,
            report.stats.hit_rate() * 100.0,
            report.stats.misses
        ));
        runs.push((report, per_shard, qps / base_qps));
        if t == threads {
            break;
        }
        t = (t * 2).min(threads);
    }

    match metrics {
        "" => Ok(out),
        "text" => {
            out.push('\n');
            for (report, _, _) in &runs {
                let h = &report.latency;
                out.push_str(&format!(
                    "latency_ns t={}: count={} mean={:.0} p50={} p90={} p99={} max={}\n",
                    report.threads,
                    h.count(),
                    h.mean(),
                    h.percentile(0.50),
                    h.percentile(0.90),
                    h.percentile(0.99),
                    h.max()
                ));
            }
            let (last, per_shard, _) = runs.last().expect("threads >= 1 ran");
            out.push_str(&format!("\nper-shard buffer stats (t={}):\n", last.threads));
            out.push_str(&format!(
                "{:<6} {:>8} {:>8} {:>10} {:>11} {:>10}\n",
                "shard", "hits", "misses", "evictions", "writebacks", "coalesced"
            ));
            for (i, s) in per_shard.iter().enumerate() {
                out.push_str(&format!(
                    "{:<6} {:>8} {:>8} {:>10} {:>11} {:>10}\n",
                    i, s.hits, s.misses, s.evictions, s.writebacks, s.coalesced
                ));
            }
            out.push_str("\n-- metrics --\n");
            out.push_str(&obs::snapshot().render_text());
            Ok(out)
        }
        "json" => {
            let mut j = format!(
                "{{\"queries\": {}, \"pool_pages\": {}, \"shards\": {}, \"runs\": [",
                batch.len(),
                buffer.max(1),
                tree.pool().shard_count()
            );
            for (i, (report, per_shard, speedup)) in runs.iter().enumerate() {
                if i > 0 {
                    j.push_str(", ");
                }
                let shards: Vec<String> = per_shard.iter().map(buffer_stats_json).collect();
                j.push_str(&format!(
                    "{{\"threads\": {}, \"queries_per_sec\": {:.1}, \"speedup\": {:.3}, \
                     \"hit_rate\": {:.4}, \"disk_accesses\": {}, \"latency_ns\": {}, \
                     \"per_thread_queries\": {:?}, \"buffer\": {}, \"per_shard\": [{}]}}",
                    report.threads,
                    report.throughput(),
                    speedup,
                    report.stats.hit_rate(),
                    report.stats.misses,
                    obs::histogram_json(&report.latency),
                    report.per_thread_queries,
                    buffer_stats_json(&report.stats),
                    shards.join(", ")
                ));
            }
            j.push_str(&format!("], \"registry\": {}}}", obs::snapshot().to_json()));
            Ok(j)
        }
        other => Err(format!("--metrics: expected text or json, got '{other}'")),
    }
}

/// `flight-dump`: replay a short query workload against an index with
/// the flight recorder armed, then print every captured event.
///
/// The recorder is process-global and starts empty in a fresh CLI
/// process, so the dump is exactly the probe workload's event trail —
/// page reads, evictions, write-backs, query start/end markers.
pub fn flight_dump(
    index: &Path,
    queries: usize,
    buffer: usize,
    seed: u64,
    tree_name: &str,
) -> CliResult<String> {
    obs::set_enabled(true);
    let tree = open_index(index, buffer, tree_name)?;
    let bbox = tree.root_mbr().map_err(|e| e.to_string())?;
    let side = 0.05 * bbox.extent(0).max(bbox.extent(1));
    for r in datagen::region_queries(queries.max(1), &bbox, side, seed) {
        tree.query_region_visit(&r, &mut |_, _| {})
            .map_err(|e| e.to_string())?;
    }
    let rec = obs::flight::global();
    let events = rec.dump();
    let mut out = format!(
        "flight recorder: {} events (capacity {}, {} dropped)\n",
        events.len(),
        rec.capacity(),
        rec.dropped()
    );
    for e in &events {
        out.push_str(&obs::flight::format_event(e));
        out.push('\n');
    }
    Ok(out)
}

/// `trace`: run a seeded probe workload with span tracing on and
/// report a per-trace summary; the caller (main) writes the Chrome
/// trace_event file from the same retained records via [`write_trace`].
///
/// Each probe query runs under its own `cli.query` root span, so the
/// exported file shows one trace per query with the node visits and
/// physical reads it caused as the child tree.
pub fn trace_command(
    index: &Path,
    queries: usize,
    buffer: usize,
    seed: u64,
    tree_name: &str,
) -> CliResult<String> {
    obs::set_enabled(true);
    obs::trace::set_enabled(true);
    let tree = open_index(index, buffer, tree_name)?;
    let bbox = tree.root_mbr().map_err(|e| e.to_string())?;
    let side = 0.05 * bbox.extent(0).max(bbox.extent(1));
    for r in datagen::region_queries(queries.max(1), &bbox, side, seed) {
        let _span = obs::trace::span("cli.query");
        tree.query_region_visit(&r, &mut |_, _| {})
            .map_err(|e| e.to_string())?;
    }
    let records = obs::trace::dump();
    let trees = obs::trace::stitch(&records);
    let roots = trees
        .iter()
        .filter(|t| t.record.name == "cli.query")
        .count();
    let max_depth = trees.iter().map(|t| t.depth()).max().unwrap_or(0);
    let slow = obs::trace::slow_ops();
    let mut out = format!(
        "traced {} spans in {} trees ({roots} query roots, max depth {max_depth}, {} dropped)\n",
        records.len(),
        trees.len(),
        obs::trace::spans_dropped(),
    );
    if !slow.is_empty() {
        out.push_str(&format!("slow ops ({}):\n", slow.len()));
        for op in &slow {
            out.push_str(&format!(
                "  {} {}ns trace={} spans={}\n",
                op.root.name,
                op.root.dur_ns,
                op.root.trace,
                op.spans.len()
            ));
        }
    }
    Ok(out)
}

/// Export every retained span record as a Chrome trace_event JSON file
/// at `path`. Called by main after any `--trace <path>` run.
pub fn write_trace(path: &Path) -> CliResult<String> {
    let records = obs::trace::dump();
    let json = obs::trace::export_chrome(&records);
    std::fs::write(path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(format!(
        "# wrote {} spans to {} (load in chrome://tracing or Perfetto)\n",
        records.len(),
        path.display()
    ))
}

/// `insert`: add rectangles from a CSV to an existing index (Guttman
/// dynamic insertion), persisting afterwards.
pub fn insert(index: &Path, input: &Path, buffer: usize, tree_name: &str) -> CliResult<String> {
    let items = csvio::read_items(input)?;
    let mut tree = open_index(index, buffer.max(64), tree_name)?;
    let n = items.len();
    for (rect, id) in items {
        tree.insert(rect, id).map_err(|e| e.to_string())?;
    }
    tree.persist().map_err(|e| e.to_string())?;
    Ok(format!(
        "inserted {n} rectangles; index now holds {}",
        tree.len()
    ))
}

/// `delete`: remove rectangles listed in a CSV (exact rect + id match).
pub fn delete(index: &Path, input: &Path, buffer: usize, tree_name: &str) -> CliResult<String> {
    let items = csvio::read_items(input)?;
    let mut tree = open_index(index, buffer.max(64), tree_name)?;
    let mut removed = 0u64;
    for (rect, id) in items {
        if tree.delete(&rect, id).map_err(|e| e.to_string())? {
            removed += 1;
        }
    }
    tree.persist().map_err(|e| e.to_string())?;
    Ok(format!(
        "deleted {removed} rectangles; index now holds {}",
        tree.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEF: &str = rtree::DEFAULT_TREE;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtree-cli-cmd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn full_lifecycle() {
        let data = tmp("life.csv");
        let index = tmp("life.rtree");

        let msg = generate("uniform", 2000, 7, &data).unwrap();
        assert!(msg.contains("2000"));

        let msg = build(&data, &index, "str", 50, 0, 1, None).unwrap();
        assert!(msg.contains("packed 2000"), "{msg}");

        let msg = validate(&index, DEF).unwrap();
        assert!(msg.contains("OK"));

        let out =
            query_region(&index, geom::Rect2::new([0.0, 0.0], [0.25, 0.25]), 32, DEF).unwrap();
        assert!(out.contains("disk accesses"));

        let out = knn(&index, geom::Point2::new([0.5, 0.5]), 3, 32, DEF).unwrap();
        assert_eq!(out.lines().count(), 3);

        let out = stats(&index, DEF).unwrap();
        assert!(out.contains("utilization"));
        assert!(out.contains("level"));

        let leaves = dump_leaves(&index, DEF).unwrap();
        assert_eq!(leaves.lines().count(), 1 + 2000usize.div_ceil(50));

        // Insert more, delete some.
        let extra = tmp("extra.csv");
        generate("uniform", 100, 8, &extra).unwrap();
        let msg = insert(&index, &extra, 64, DEF).unwrap();
        assert!(msg.contains("2100"), "{msg}");
        let msg = delete(&index, &extra, 64, DEF).unwrap();
        assert!(msg.contains("deleted"), "{msg}");

        std::fs::remove_file(data).ok();
        std::fs::remove_file(index).ok();
        std::fs::remove_file(extra).ok();
    }

    #[test]
    fn flatten_serves_identical_query_results() {
        let data = tmp("flat.csv");
        let index = tmp("flat.rtree");
        generate("uniform", 2500, 17, &data).unwrap();
        build(&data, &index, "str", 50, 0, 1, None).unwrap();

        let msg = flatten(&index, DEF, None).unwrap();
        assert!(msg.contains("2500 rectangles"), "{msg}");
        let flat_path = default_flat_path(&index, DEF);
        assert!(flat_path.exists(), "{}", flat_path.display());

        let region = geom::Rect2::new([0.1, 0.2], [0.5, 0.6]);
        let paged = query_region(&index, region, 32, DEF).unwrap();
        let flat = query_region_flat(&flat_path, region).unwrap();
        // Same hit lines (flat reorders nothing: both emit slot/leaf
        // order), different footer.
        let body = |s: &str| {
            let mut v: Vec<&str> = s.lines().filter(|l| !l.starts_with('#')).collect();
            v.sort_unstable();
            v.join("\n")
        };
        assert_eq!(body(&paged), body(&flat));
        assert!(flat.contains("flat tier"), "{flat}");

        // --out writes where told.
        let alt = tmp("alt.flat");
        flatten(&index, DEF, Some(&alt)).unwrap();
        assert_eq!(
            body(&query_region_flat(&alt, region).unwrap()),
            body(&paged)
        );

        std::fs::remove_file(data).ok();
        std::fs::remove_file(index).ok();
        std::fs::remove_file(flat_path).ok();
        std::fs::remove_file(alt).ok();
    }

    #[test]
    fn check_reports_clean_and_detects_corruption() {
        let data = tmp("chk.csv");
        let index = tmp("chk.rtree");
        generate("uniform", 1000, 13, &data).unwrap();
        build(&data, &index, "str", 50, 0, 1, None).unwrap();

        let msg = check(&index, DEF).unwrap();
        assert!(msg.contains("clean"), "{msg}");

        // Flip a byte in the middle of a node page on disk.
        use std::io::{Read, Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&index)
            .unwrap();
        let off = storage::DEFAULT_PAGE_SIZE as u64 * 2 + 100;
        f.seek(SeekFrom::Start(off)).unwrap();
        let mut byte = [0u8; 1];
        f.read_exact(&mut byte).unwrap();
        byte[0] ^= 0x55;
        f.seek(SeekFrom::Start(off)).unwrap();
        f.write_all(&byte).unwrap();
        drop(f);

        let err = check(&index, DEF).unwrap_err();
        assert!(err.contains("problem"), "{err}");
        // validate (fail-fast) must also refuse the damaged index.
        assert!(validate(&index, DEF).is_err());

        std::fs::remove_file(data).ok();
        std::fs::remove_file(index).ok();
    }

    #[test]
    fn every_packer_name_builds() {
        let data = tmp("packers.csv");
        generate("squares", 500, 9, &data).unwrap();
        for name in ["str", "str-par", "hs", "nx", "tgs"] {
            let index = tmp(&format!("packers-{name}.rtree"));
            let msg = build(&data, &index, name, 20, 0, 1, None).unwrap();
            assert!(msg.contains("packed 500"), "{name}: {msg}");
            validate(&index, DEF).unwrap();
            std::fs::remove_file(index).ok();
        }
        assert!(parse_packer("bogus").is_err());
        std::fs::remove_file(data).ok();
    }

    #[test]
    fn compare_prints_all_packers() {
        let data = tmp("cmp.csv");
        generate("uniform", 800, 10, &data).unwrap();
        let out = compare(&data, 40, 16).unwrap();
        for name in ["STR", "HS", "NX", "TGS"] {
            assert!(out.contains(name), "{name} missing from:\n{out}");
        }
        assert!(out.lines().count() >= 5);
        std::fs::remove_file(data).ok();
    }

    #[test]
    fn external_build_matches_in_memory() {
        let data = tmp("ext.csv");
        generate("uniform", 3000, 12, &data).unwrap();
        let a = tmp("ext-mem.rtree");
        let b = tmp("ext-ext.rtree");
        build(&data, &a, "str", 50, 0, 1, None).unwrap();
        build(&data, &b, "str", 50, 100, 4, None).unwrap();
        assert_eq!(dump_leaves(&a, DEF).unwrap(), dump_leaves(&b, DEF).unwrap());
        std::fs::remove_file(data).ok();
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn query_bench_metrics_modes() {
        let data = tmp("qb.csv");
        let index = tmp("qb.rtree");
        generate("uniform", 3000, 21, &data).unwrap();
        build(&data, &index, "str", 50, 0, 1, None).unwrap();

        let plain = query_bench(&index, 60, 2, 16, 11, "", DEF).unwrap();
        assert!(plain.contains("queries/s"), "{plain}");

        let text = query_bench(&index, 60, 2, 16, 11, "text", DEF).unwrap();
        assert!(text.contains("latency_ns t=1:"), "{text}");
        assert!(text.contains("per-shard buffer stats"), "{text}");

        let json = query_bench(&index, 60, 2, 16, 11, "json", DEF).unwrap();
        for needle in [
            "\"per_shard\": [",
            "\"latency_ns\": {",
            "\"p50\":",
            "\"p90\":",
            "\"p99\":",
            "\"disk_accesses\":",
            "\"per_thread_queries\":",
            "\"registry\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Crude structural check: braces balance, so the document at
        // least nests correctly.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "unbalanced JSON:\n{json}");

        assert!(query_bench(&index, 60, 2, 16, 11, "xml", DEF).is_err());

        std::fs::remove_file(data).ok();
        std::fs::remove_file(index).ok();
    }

    #[test]
    fn flight_dump_records_query_traffic() {
        let data = tmp("fd.csv");
        let index = tmp("fd.rtree");
        generate("uniform", 2000, 31, &data).unwrap();
        build(&data, &index, "str", 50, 0, 1, None).unwrap();

        let out = flight_dump(&index, 32, 8, 11, DEF).unwrap();
        assert!(out.contains("flight recorder:"), "{out}");
        assert!(out.contains("query_start"), "{out}");
        assert!(out.contains("query_end"), "{out}");
        assert!(out.contains("page_read"), "{out}");

        std::fs::remove_file(data).ok();
        std::fs::remove_file(index).ok();
    }

    #[test]
    fn named_trees_share_one_file() {
        let data_a = tmp("multi-a.csv");
        let data_b = tmp("multi-b.csv");
        let index = tmp("multi.rtree");
        std::fs::remove_file(&index).ok();
        generate("uniform", 600, 41, &data_a).unwrap();
        generate("squares", 400, 42, &data_b).unwrap();

        let msg = build(&data_a, &index, "str", 50, 0, 1, Some("roads")).unwrap();
        assert!(msg.contains("tree 'roads'"), "{msg}");
        let msg = build(&data_b, &index, "hs", 40, 0, 1, Some("parcels")).unwrap();
        assert!(msg.contains("tree 'parcels'"), "{msg}");

        let listing = trees(&index).unwrap();
        assert!(listing.contains("roads"), "{listing}");
        assert!(listing.contains("parcels"), "{listing}");
        assert!(listing.contains("2 tree(s)"), "{listing}");

        // Both trees open and validate independently out of one file.
        let msg = validate(&index, "roads").unwrap();
        assert!(msg.contains("600 rectangles"), "{msg}");
        let msg = validate(&index, "parcels").unwrap();
        assert!(msg.contains("400 rectangles"), "{msg}");
        check(&index, "roads").unwrap();
        check(&index, "parcels").unwrap();
        assert!(validate(&index, "nope").is_err());

        // Re-packing an existing name must be rejected, not clobbered.
        assert!(build(&data_a, &index, "str", 50, 0, 1, Some("roads")).is_err());

        std::fs::remove_file(data_a).ok();
        std::fs::remove_file(data_b).ok();
        std::fs::remove_file(index).ok();
    }

    #[test]
    fn every_dataset_name_generates() {
        for ds in ["uniform", "squares", "tiger", "vlsi", "cfd"] {
            let path = tmp(&format!("gen-{ds}.csv"));
            let msg = generate(ds, 300, 1, &path).unwrap();
            assert!(msg.contains("300"), "{ds}: {msg}");
            std::fs::remove_file(path).ok();
        }
        assert!(generate("bogus", 10, 1, &tmp("x.csv")).is_err());
    }
}
