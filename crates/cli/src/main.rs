//! `rtree-cli` — build, query and inspect packed R-tree index files.
//!
//! ```text
//! rtree-cli gen      --dataset tiger --n 53145 --seed 1 --output data.csv
//! rtree-cli build    --input data.csv --output index.rtree [--packer str|str-par|hs|nx|tgs] [--capacity 100] [--external N] [--threads T] [--tree NAME]
//! rtree-cli build    --input data.csv --lsm DIR [--capacity 100] [--threads T]
//! rtree-cli flatten  --index index.rtree [--tree NAME] [--out file.flat]
//! rtree-cli query    --index index.rtree --region 0.1,0.1,0.3,0.3 [--buffer 32] [--flat auto|file.flat]
//! rtree-cli query    --lsm DIR --region 0.1,0.1,0.3,0.3
//! rtree-cli point    --index index.rtree --at 0.5,0.5 [--flat auto|file.flat]
//! rtree-cli point    --lsm DIR --at 0.5,0.5
//! rtree-cli knn      --index index.rtree --at 0.5,0.5 --k 10
//! rtree-cli compare  --input data.csv [--capacity 100] [--buffer 32]
//! rtree-cli query-bench --index index.rtree [--queries 512] [--threads 8] [--buffer 128] [--seed 11]
//! rtree-cli flight-dump --index index.rtree [--queries 64] [--buffer 16] [--seed 11]
//! rtree-cli trace    --index index.rtree [--queries 64] [--buffer 16] [--seed 11] [--trace out.json]
//! rtree-cli stats    --index index.rtree
//! rtree-cli validate --index index.rtree
//! rtree-cli check    --index index.rtree
//! rtree-cli dump-leaves --index index.rtree
//! rtree-cli insert   --index index.rtree --input more.csv
//! rtree-cli delete   --index index.rtree --input victims.csv
//! rtree-cli trees    --index index.rtree
//! rtree-cli wal-stat --index index.rtree
//! rtree-cli recover  --index index.rtree
//! ```
//!
//! Index files use the v2 on-disk format, which holds several named
//! trees in one file; every command that reads or writes a tree accepts
//! `--tree NAME` (default `default`). `build --tree` packs into an
//! existing file instead of truncating it; `trees` lists the catalog.
//!
//! `flatten` lowers a named tree into a sibling `.flat` file — one
//! contiguous checksummed buffer the flat tier serves zero-copy via
//! mmap. `query --flat auto` (or `--flat path.flat`) answers from that
//! file instead of the paged index.
//!
//! `--lsm DIR` points `build`/`query`/`point` at an LSM tree directory
//! (superblock file, WAL, flat segments — see DESIGN.md §15): `build
//! --lsm` ingests through the durable insert path instead of bulk
//! packing, and queries answer over the memtable plus every flat level
//! through the same `SpatialIndex` interface as the other tiers.
//!
//! Every command additionally accepts `--metrics text|json`, which
//! turns the observability layer on for the run and appends a snapshot
//! of every recorded metric (counters, gauges, latency histograms with
//! p50/p90/p99) to the output. `query-bench` folds the metrics into its
//! own report instead — per-run latency percentiles and per-shard
//! buffer-pool counters, as one JSON document in json mode.
//!
//! `--trace out.json` additionally turns on request-scoped span
//! tracing (see DESIGN.md §14) and writes every retained span to
//! `out.json` in Chrome trace_event format — load it in
//! `chrome://tracing` or Perfetto. `--trace-sample N` records 1-in-N
//! traces; `--slow-ms MS` promotes root spans over the threshold to
//! the slow-op log (reported by the `trace` subcommand).

use std::collections::HashMap;
use std::path::PathBuf;

use rtree_cli::{commands, parse_point, parse_rect, CliResult};

fn usage() -> ! {
    eprintln!(
        "usage: rtree-cli <gen|build|flatten|query|point|knn|stats|validate|check|dump-leaves|insert|delete|compare|query-bench|flight-dump|trace|trees|wal-stat|recover> \
         [--flag value]... [--tree name] [--metrics text|json] [--trace out.json [--trace-sample N] [--slow-ms MS]]\nsee the crate docs for per-command flags"
    );
    std::process::exit(2);
}

struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> CliResult<Self> {
        let mut map = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Self(map))
    }

    fn req(&self, key: &str) -> CliResult<&str> {
        self.0
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required --{key}"))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(|s| s.as_str())
    }

    fn opt(&self, key: &str, default: &str) -> String {
        self.0
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> CliResult<T>
    where
        T::Err: std::fmt::Display,
    {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }
}

/// `--flat` target for query/point: `auto` derives the sibling path the
/// `flatten` command writes by default, anything else is the path
/// itself; absent means serve from the paged index.
fn resolve_flat(flags: &Flags, tree: &str) -> CliResult<Option<PathBuf>> {
    match flags.get("flat") {
        None => Ok(None),
        Some("auto") => Ok(Some(commands::default_flat_path(
            &PathBuf::from(flags.req("index")?),
            tree,
        ))),
        Some(path) => Ok(Some(PathBuf::from(path))),
    }
}

/// Dispatch a region query to the backend the flags select: an LSM
/// directory (`--lsm`), a flat file (`--flat`), or the paged index.
fn run_query(flags: &Flags, tree: &str, region: geom::Rect2) -> CliResult<String> {
    if let Some(dir) = flags.get("lsm") {
        return commands::query_region_lsm(&PathBuf::from(dir), region);
    }
    match resolve_flat(flags, tree)? {
        Some(path) => commands::query_region_flat(&path, region),
        None => commands::query_region(
            &PathBuf::from(flags.req("index")?),
            region,
            flags.parse_num("buffer", 32usize)?,
            tree,
        ),
    }
}

fn run() -> CliResult<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = Flags::parse(rest)?;
    let metrics = flags.opt("metrics", "");
    let tree = flags.opt("tree", rtree::DEFAULT_TREE);
    if !matches!(metrics.as_str(), "" | "text" | "json") {
        return Err(format!("--metrics: expected text or json, got '{metrics}'"));
    }
    if !metrics.is_empty() {
        obs::set_enabled(true);
    }
    // `--trace <path>` turns on span tracing for the run and writes the
    // retained spans to <path> as a Chrome trace_event file afterwards.
    // Tracing implies metrics: span I/O attribution is checked against
    // the registry deltas, so both layers must count the same events.
    let trace_path = flags.get("trace").map(PathBuf::from);
    if trace_path.is_some() {
        obs::set_enabled(true);
        obs::trace::set_enabled(true);
        obs::trace::set_sample_every(flags.parse_num("trace-sample", 1u64)?);
    }
    let slow_ms = flags.parse_num("slow-ms", 0u64)?;
    if slow_ms > 0 {
        obs::trace::set_slow_threshold(std::time::Duration::from_millis(slow_ms));
    }
    let out = match cmd.as_str() {
        "gen" => commands::generate(
            flags.req("dataset")?,
            flags.parse_num("n", 10_000usize)?,
            flags.parse_num("seed", 1u64)?,
            &PathBuf::from(flags.req("output")?),
        ),
        "build" => match flags.get("lsm") {
            Some(dir) => commands::build_lsm(
                &PathBuf::from(flags.req("input")?),
                &PathBuf::from(dir),
                flags.parse_num("capacity", 100usize)?,
                flags.parse_num("threads", 1usize)?,
            ),
            None => commands::build(
                &PathBuf::from(flags.req("input")?),
                &PathBuf::from(flags.req("output")?),
                &flags.opt("packer", "str"),
                flags.parse_num("capacity", 100usize)?,
                flags.parse_num("external", 0usize)?,
                flags.parse_num("threads", 1usize)?,
                flags.get("tree"),
            ),
        },
        "flatten" => commands::flatten(
            &PathBuf::from(flags.req("index")?),
            &tree,
            flags.get("out").map(PathBuf::from).as_deref(),
        ),
        "query" => {
            let region = parse_rect(flags.req("region")?)?;
            run_query(&flags, &tree, region)
        }
        "point" => {
            let p = parse_point(flags.req("at")?)?;
            run_query(&flags, &tree, geom::Rect2::from_point(p))
        }
        "knn" => commands::knn(
            &PathBuf::from(flags.req("index")?),
            parse_point(flags.req("at")?)?,
            flags.parse_num("k", 5usize)?,
            flags.parse_num("buffer", 32usize)?,
            &tree,
        ),
        "compare" => commands::compare(
            &PathBuf::from(flags.req("input")?),
            flags.parse_num("capacity", 100usize)?,
            flags.parse_num("buffer", 32usize)?,
        ),
        "query-bench" => commands::query_bench(
            &PathBuf::from(flags.req("index")?),
            flags.parse_num("queries", 512usize)?,
            flags.parse_num("threads", 8usize)?,
            flags.parse_num("buffer", 128usize)?,
            flags.parse_num("seed", 11u64)?,
            &metrics,
            &tree,
        ),
        "trace" => commands::trace_command(
            &PathBuf::from(flags.req("index")?),
            flags.parse_num("queries", 64usize)?,
            flags.parse_num("buffer", 16usize)?,
            flags.parse_num("seed", 11u64)?,
            &tree,
        ),
        "flight-dump" => commands::flight_dump(
            &PathBuf::from(flags.req("index")?),
            flags.parse_num("queries", 64usize)?,
            flags.parse_num("buffer", 16usize)?,
            flags.parse_num("seed", 11u64)?,
            &tree,
        ),
        "stats" => commands::stats(&PathBuf::from(flags.req("index")?), &tree),
        "validate" => commands::validate(&PathBuf::from(flags.req("index")?), &tree),
        "check" => commands::check(&PathBuf::from(flags.req("index")?), &tree),
        "dump-leaves" => commands::dump_leaves(&PathBuf::from(flags.req("index")?), &tree),
        "trees" => commands::trees(&PathBuf::from(flags.req("index")?)),
        "wal-stat" => commands::wal_stat(&PathBuf::from(flags.req("index")?)),
        "recover" => commands::recover(&PathBuf::from(flags.req("index")?)),
        "insert" => commands::insert(
            &PathBuf::from(flags.req("index")?),
            &PathBuf::from(flags.req("input")?),
            flags.parse_num("buffer", 64usize)?,
            &tree,
        ),
        "delete" => commands::delete(
            &PathBuf::from(flags.req("index")?),
            &PathBuf::from(flags.req("input")?),
            flags.parse_num("buffer", 64usize)?,
            &tree,
        ),
        _ => usage(),
    };
    // Any traced run exports its spans on the way out; the note is a
    // `#` comment line so machine-read outputs stay parseable.
    let out = match (out, &trace_path) {
        (Ok(mut text), Some(path)) => {
            if !text.ends_with('\n') {
                text.push('\n');
            }
            text.push_str(&commands::write_trace(path)?);
            Ok(text)
        }
        (out, _) => out,
    };
    // `query-bench` embeds its metrics (the generic registry dump would
    // corrupt its JSON document); every other command gets the snapshot
    // appended.
    match (out, metrics.as_str(), cmd.as_str()) {
        (Ok(mut text), "text", c) if c != "query-bench" => {
            text.push_str("\n-- metrics --\n");
            text.push_str(&obs::snapshot().render_text());
            Ok(text)
        }
        (Ok(mut text), "json", c) if c != "query-bench" => {
            if !text.ends_with('\n') {
                text.push('\n');
            }
            text.push_str(&obs::snapshot().to_json());
            Ok(text)
        }
        (out, _, _) => out,
    }
}

fn main() {
    match run() {
        Ok(out) => print!("{out}{}", if out.ends_with('\n') { "" } else { "\n" }),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
