//! Plain CSV reading/writing of rectangle data.
//!
//! Format: `xmin,ymin,xmax,ymax[,id]` per line, `#`-comments and a
//! header line (detected by non-numeric first field) allowed. Missing
//! ids are assigned sequentially.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use geom::Rect2;

use crate::CliResult;

/// Read `(rect, id)` items from a CSV file.
pub fn read_items(path: &Path) -> CliResult<Vec<(Rect2, u64)>> {
    let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let reader = BufReader::new(file);
    let mut items = Vec::new();
    let mut next_id = 0u64;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(|f| f.trim()).collect();
        if fields.len() != 4 && fields.len() != 5 {
            return Err(format!(
                "{}:{}: expected 4 or 5 fields, got {}",
                path.display(),
                lineno + 1,
                fields.len()
            ));
        }
        // Header row: first field not a number.
        if lineno == 0 && fields[0].parse::<f64>().is_err() {
            continue;
        }
        let mut v = [0.0f64; 4];
        for (i, f) in fields[..4].iter().enumerate() {
            v[i] = f
                .parse()
                .map_err(|e| format!("{}:{}: field {}: {e}", path.display(), lineno + 1, i + 1))?;
        }
        let rect = Rect2::try_new([v[0], v[1]], [v[2], v[3]])
            .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        let id = match fields.get(4) {
            Some(f) => f
                .parse()
                .map_err(|e| format!("{}:{}: id: {e}", path.display(), lineno + 1))?,
            None => {
                let id = next_id;
                next_id += 1;
                id
            }
        };
        next_id = next_id.max(id + 1);
        items.push((rect, id));
    }
    Ok(items)
}

/// Write `(rect, id)` items as CSV.
pub fn write_items(path: &Path, items: &[(Rect2, u64)]) -> CliResult<()> {
    let mut file = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(file, "xmin,ymin,xmax,ymax,id").map_err(|e| e.to_string())?;
    for (r, id) in items {
        writeln!(file, "{},{},{},{},{id}", r.lo(0), r.lo(1), r.hi(0), r.hi(1))
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtree-cli-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let path = tmp("rt.csv");
        let items = vec![
            (Rect2::new([0.0, 0.0], [1.0, 1.0]), 0),
            (Rect2::new([0.25, 0.5], [0.75, 0.9]), 7),
        ];
        write_items(&path, &items).unwrap();
        let back = read_items(&path).unwrap();
        assert_eq!(back, items);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reads_without_ids_and_with_comments() {
        let path = tmp("noids.csv");
        std::fs::write(&path, "# data\n0,0,1,1\n\n0.1,0.1,0.2,0.2\n").unwrap();
        let items = read_items(&path).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].1, 0);
        assert_eq!(items[1].1, 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn skips_header_row() {
        let path = tmp("hdr.csv");
        std::fs::write(&path, "xmin,ymin,xmax,ymax\n0,0,1,1\n").unwrap();
        assert_eq!(read_items(&path).unwrap().len(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_rows() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "0,0,1\n").unwrap();
        assert!(read_items(&path).unwrap_err().contains("expected 4 or 5"));
        std::fs::write(&path, "1,0,0,1\n").unwrap();
        assert!(read_items(&path).is_err(), "inverted rect");
        std::fs::write(&path, "0,0,x,1\n").unwrap();
        assert!(read_items(&path).is_err(), "non-numeric");
        std::fs::remove_file(path).ok();
    }
}
