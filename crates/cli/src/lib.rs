//! Library core of `rtree-cli`: argument-free functions the binary wires
//! to flags, kept separate so they are unit-testable without spawning
//! processes.

pub mod commands;
pub mod csvio;

/// CLI-level errors, all stringly — they go straight to stderr.
pub type CliResult<T> = Result<T, String>;

/// Parse "x,y" into a point.
pub fn parse_point(s: &str) -> CliResult<geom::Point2> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 2 {
        return Err(format!("expected x,y — got '{s}'"));
    }
    let x: f64 = parts[0].trim().parse().map_err(|e| format!("bad x: {e}"))?;
    let y: f64 = parts[1].trim().parse().map_err(|e| format!("bad y: {e}"))?;
    geom::Point2::try_new([x, y]).map_err(|e| e.to_string())
}

/// Parse "x0,y0,x1,y1" into a rectangle.
pub fn parse_rect(s: &str) -> CliResult<geom::Rect2> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 4 {
        return Err(format!("expected x0,y0,x1,y1 — got '{s}'"));
    }
    let mut v = [0.0f64; 4];
    for (i, p) in parts.iter().enumerate() {
        v[i] = p
            .trim()
            .parse()
            .map_err(|e| format!("bad coordinate {i}: {e}"))?;
    }
    geom::Rect2::try_new([v[0], v[1]], [v[2], v[3]]).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_points_and_rects() {
        assert_eq!(
            parse_point("0.5, 0.25").unwrap(),
            geom::Point2::new([0.5, 0.25])
        );
        assert!(parse_point("1").is_err());
        assert!(parse_point("a,b").is_err());
        let r = parse_rect("0,0,1,0.5").unwrap();
        assert_eq!(r, geom::Rect2::new([0.0, 0.0], [1.0, 0.5]));
        assert!(parse_rect("1,0,0,0.5").is_err(), "inverted rect rejected");
        assert!(parse_rect("0,0,1").is_err());
    }
}
