//! End-to-end tests of the `rtree-cli` binary as a subprocess.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rtree-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtree-cli-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn gen_build_query_pipeline() {
    let data = tmp("pipe.csv");
    let index = tmp("pipe.rtree");

    let out = bin()
        .args([
            "gen",
            "--dataset",
            "tiger",
            "--n",
            "3000",
            "--seed",
            "2",
            "--output",
        ])
        .arg(&data)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["build", "--packer", "str", "--capacity", "64", "--input"])
        .arg(&data)
        .arg("--output")
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("packed 3000"));

    let out = bin()
        .args(["query", "--region", "0.4,0.4,0.6,0.6", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("disk accesses"), "{stdout}");
    let paged_hits: Vec<String> = stdout
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(str::to_string)
        .collect();

    // Flatten into the sibling .flat file, then serve the same query
    // zero-copy and compare hit sets.
    let out = bin()
        .args(["flatten", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("flattened"));

    let out = bin()
        .args([
            "query",
            "--region",
            "0.4,0.4,0.6,0.6",
            "--flat",
            "auto",
            "--index",
        ])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let flat_out = String::from_utf8_lossy(&out.stdout);
    assert!(flat_out.contains("flat tier"), "{flat_out}");
    let mut flat_hits: Vec<String> = flat_out
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    let mut want = paged_hits.clone();
    flat_hits.sort();
    want.sort();
    assert_eq!(flat_hits, want, "flat and paged hit sets differ");

    let mut flat_file = index.clone().into_os_string();
    flat_file.push(".default.flat");
    std::fs::remove_file(PathBuf::from(flat_file)).ok();

    let out = bin()
        .args(["stats", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("utilization"));

    let out = bin()
        .args(["validate", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn query_bench_reports_thread_scaling() {
    let data = tmp("qb.csv");
    let index = tmp("qb.rtree");
    assert!(bin()
        .args(["gen", "--dataset", "uniform", "--n", "5000", "--output"])
        .arg(&data)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--capacity", "64", "--input"])
        .arg(&data)
        .arg("--output")
        .arg(&index)
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args([
            "query-bench",
            "--queries",
            "64",
            "--threads",
            "4",
            "--buffer",
            "32",
            "--index",
        ])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("queries/s"), "{stdout}");
    // One row per thread count: 1, 2, 4.
    for t in ["1", "2", "4"] {
        assert!(
            stdout.lines().any(|l| l.trim_start().starts_with(t)),
            "missing row for {t} threads:\n{stdout}"
        );
    }
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());

    let out = bin().args(["build", "--input"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args([
            "query",
            "--index",
            "/nonexistent.rtree",
            "--region",
            "0,0,1,1",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn knn_outputs_k_lines() {
    let data = tmp("knn.csv");
    let index = tmp("knn.rtree");
    assert!(bin()
        .args(["gen", "--dataset", "uniform", "--n", "500", "--output"])
        .arg(&data)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--input"])
        .arg(&data)
        .arg("--output")
        .arg(&index)
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["knn", "--at", "0.5,0.5", "--k", "7", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim().lines().count(),
        7
    );
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}
