//! End-to-end trace export: `rtree-cli query --trace out.json` on a
//! 100k-entry tree must produce a schema-valid Chrome trace_event file
//! whose span tree is at least 3 levels deep (query → node visits →
//! disk reads) and whose root-span page-read attribution exactly
//! equals the registry's physical-read delta for the run.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;

use str_bench::schema::{self, Value};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rtree-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtree-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// One parsed trace event: (name, span, parent, pages_read).
struct Ev {
    name: String,
    span: u64,
    parent: u64,
    pages_read: u64,
}

fn parse_events(text: &str) -> Vec<Ev> {
    let doc = schema::parse(text).expect("trace file parses as JSON");
    let events = doc
        .as_object()
        .and_then(|t| t.get("traceEvents"))
        .and_then(Value::as_array)
        .expect("traceEvents array");
    events
        .iter()
        .map(|e| {
            let ev = e.as_object().unwrap();
            let args = ev.get("args").and_then(Value::as_object).unwrap();
            let num =
                |k: &str| -> u64 { args.get(k).and_then(Value::as_number).unwrap_or(0.0) as u64 };
            Ev {
                name: ev.get("name").and_then(Value::as_str).unwrap().to_string(),
                span: num("span"),
                parent: num("parent"),
                pages_read: num("pages_read"),
            }
        })
        .collect()
}

/// Depth of the subtree under `span` (the span itself counts as 1).
fn depth_under(span: u64, children: &HashMap<u64, Vec<u64>>) -> usize {
    1 + children
        .get(&span)
        .map(|kids| {
            kids.iter()
                .map(|&k| depth_under(k, children))
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

#[test]
fn query_trace_is_deep_and_io_exact() {
    let data = tmp("trace.csv");
    let index = tmp("trace.rtree");
    let trace = tmp("trace.json");

    run_ok(
        bin()
            .args([
                "gen",
                "--dataset",
                "uniform",
                "--n",
                "100000",
                "--seed",
                "5",
                "--output",
            ])
            .arg(&data),
    );
    let out = run_ok(
        bin()
            .args(["build", "--packer", "str", "--capacity", "100", "--input"])
            .arg(&data)
            .arg("--output")
            .arg(&index),
    );
    assert!(out.contains("packed 100000"), "{out}");

    // Small buffer pool: the query must touch disk, giving the trace
    // its third level (disk.read spans under the node visits).
    let stdout = run_ok(
        bin()
            .args([
                "query",
                "--region",
                "0.2,0.2,0.4,0.4",
                "--buffer",
                "32",
                "--trace",
            ])
            .arg(&trace)
            .arg("--index")
            .arg(&index),
    );

    // The parity line: per-query page reads attributed to the root
    // span must exactly equal the registry's physical-read delta.
    let parity = stdout
        .lines()
        .find(|l| l.starts_with("# trace:"))
        .unwrap_or_else(|| panic!("missing parity line in:\n{stdout}"));
    let field = |key: &str| -> u64 {
        parity
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {key} in '{parity}'"))
    };
    let pages_read = field("pages_read");
    let reads_delta = field("physical_reads_delta");
    assert!(pages_read > 0, "cold query must read pages: {parity}");
    assert_eq!(
        pages_read, reads_delta,
        "span attribution drifted: {parity}"
    );

    // The exported file is schema-valid…
    let text = std::fs::read_to_string(&trace).unwrap();
    let n = schema::validate_chrome_trace(&text).expect("trace file is schema-valid");
    assert!(n > 0);

    // …and the cli.query span tree is ≥ 3 levels deep, with the
    // query → node visit → disk read chain intact.
    let events = parse_events(&text);
    let mut children: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut by_span: HashMap<u64, &Ev> = HashMap::new();
    for e in &events {
        children.entry(e.parent).or_default().push(e.span);
        by_span.insert(e.span, e);
    }
    let root = events
        .iter()
        .find(|e| e.name == "cli.query")
        .expect("cli.query root span exported");
    let depth = depth_under(root.span, &children);
    assert!(depth >= 3, "span tree only {depth} levels deep");
    // The exported root event carries the same attribution the CLI
    // printed on the parity line.
    assert_eq!(
        root.pages_read, pages_read,
        "export drifted from parity line"
    );
    let node_with_read = events.iter().any(|e| {
        e.name == "disk.read"
            && by_span
                .get(&e.parent)
                .is_some_and(|p| p.name == "rtree.node")
    });
    assert!(node_with_read, "no disk.read recorded under a node visit");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn trace_subcommand_and_sampling() {
    let data = tmp("sub.csv");
    let index = tmp("sub.rtree");
    let trace = tmp("sub.json");

    run_ok(
        bin()
            .args([
                "gen",
                "--dataset",
                "uniform",
                "--n",
                "5000",
                "--seed",
                "9",
                "--output",
            ])
            .arg(&data),
    );
    run_ok(
        bin()
            .args(["build", "--packer", "str", "--capacity", "64", "--input"])
            .arg(&data)
            .arg("--output")
            .arg(&index),
    );

    // The trace subcommand runs a seeded probe workload and reports
    // the stitched summary; --trace-sample 4 keeps 1-in-4 traces.
    let stdout = run_ok(
        bin()
            .args([
                "trace",
                "--queries",
                "32",
                "--buffer",
                "16",
                "--trace-sample",
                "4",
                "--slow-ms",
                "0",
                "--trace",
            ])
            .arg(&trace)
            .arg("--index")
            .arg(&index),
    );
    assert!(stdout.contains("traced "), "{stdout}");
    assert!(stdout.contains("query roots"), "{stdout}");

    let text = std::fs::read_to_string(&trace).unwrap();
    schema::validate_chrome_trace(&text).expect("sampled trace is schema-valid");
    let events = parse_events(&text);
    let roots = events.iter().filter(|e| e.name == "cli.query").count();
    // 32 probe queries sampled 1-in-4: exactly 8 recorded roots.
    assert_eq!(roots, 8, "sampling kept {roots} of 32 roots");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
    std::fs::remove_file(&trace).ok();
}
