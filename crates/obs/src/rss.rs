//! Process resident-set-size probes, used by the out-of-core build
//! benchmarks to verify the memory-budget claims (DESIGN.md §13).
//!
//! Linux-only: values come from `/proc/self/status` (`VmRSS` for the
//! current resident set, `VmHWM` for the peak — the *high-water mark*).
//! The peak can be reset between benchmark configurations by writing
//! `5` to `/proc/self/clear_refs`, so each configuration reports its
//! own high-water mark rather than the process-lifetime maximum. On
//! other platforms (or when procfs is unavailable) every probe returns
//! `None` and callers report the sample as unavailable instead of
//! failing.

/// Current resident set size in bytes (`VmRSS`), if the platform
/// exposes it.
pub fn current_bytes() -> Option<u64> {
    read_status_field("VmRSS:")
}

/// Peak resident set size in bytes since process start or the last
/// [`reset_peak`] (`VmHWM`), if the platform exposes it.
pub fn peak_bytes() -> Option<u64> {
    read_status_field("VmHWM:")
}

/// Reset the peak-RSS high-water mark to the current RSS. Returns
/// `false` when unsupported (non-Linux, or a kernel without writable
/// `clear_refs`); the caller should then treat subsequent
/// [`peak_bytes`] readings as cumulative.
pub fn reset_peak() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Parse one `kB` field out of `/proc/self/status`.
fn read_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn probes_report_plausible_values() {
        let rss = current_bytes().expect("VmRSS available on Linux");
        let peak = peak_bytes().expect("VmHWM available on Linux");
        // A running test binary resides in at least a few hundred KiB
        // and the high-water mark can never lag the current value
        // (modulo the race of reading them separately — allow slack).
        assert!(rss > 100 * 1024, "rss = {rss}");
        assert!(peak + 10 * 1024 * 1024 >= rss, "peak {peak} vs rss {rss}");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn reset_brings_peak_near_current() {
        if !reset_peak() {
            return; // kernel without writable clear_refs
        }
        let rss = current_bytes().unwrap();
        let peak = peak_bytes().unwrap();
        // After a reset the HWM restarts from the current RSS.
        assert!(
            peak <= rss + 64 * 1024 * 1024,
            "peak {peak} should be near rss {rss} after reset"
        );
    }
}
