//! Process resident-set-size probes, used by the out-of-core build
//! benchmarks to verify the memory-budget claims (DESIGN.md §13).
//!
//! Linux-only: values come from `/proc/self/status` (`VmRSS` for the
//! current resident set, `VmHWM` for the peak — the *high-water mark*).
//! The peak can be reset between benchmark configurations by writing
//! `5` to `/proc/self/clear_refs`, so each configuration reports its
//! own high-water mark rather than the process-lifetime maximum. On
//! other platforms (or when procfs is unavailable) every probe returns
//! `None` and callers report the sample as unavailable instead of
//! failing.

/// Current resident set size in bytes (`VmRSS`), if the platform
/// exposes it.
pub fn current_bytes() -> Option<u64> {
    read_status_field("VmRSS:")
}

/// Peak resident set size in bytes since process start or the last
/// [`reset_peak`] (`VmHWM`), if the platform exposes it.
pub fn peak_bytes() -> Option<u64> {
    read_status_field("VmHWM:")
}

/// Reset the peak-RSS high-water mark to the current RSS. Returns
/// `false` when unsupported (non-Linux, or a container/kernel where
/// `clear_refs` is unwritable); the caller should then treat subsequent
/// [`peak_bytes`] readings as cumulative — [`PeakProbe`] packages that
/// rule.
pub fn reset_peak() -> bool {
    reset_peak_at("/proc/self/clear_refs")
}

fn reset_peak_at(path: &str) -> bool {
    std::fs::write(path, "5").is_ok()
}

/// A peak-RSS measurement window that degrades gracefully where the
/// high-water mark cannot be reset (sandboxed containers mount procfs
/// read-only; non-Linux has no procfs at all). [`start`](PeakProbe::start)
/// attempts the reset; [`peak_bytes`](PeakProbe::peak_bytes) then
/// returns `None` — never an error, never a process-lifetime value
/// masquerading as a window-scoped one — when the reset did not take.
#[derive(Debug, Clone, Copy)]
pub struct PeakProbe {
    reset_ok: bool,
}

impl PeakProbe {
    /// Open a measurement window: reset the high-water mark if the
    /// platform allows it, remembering whether that worked.
    pub fn start() -> PeakProbe {
        PeakProbe {
            reset_ok: reset_peak(),
        }
    }

    /// Whether the window actually started from a fresh high-water
    /// mark.
    pub fn supported(&self) -> bool {
        self.reset_ok
    }

    /// Peak RSS within this window, or `None` when the window could
    /// not be isolated (reset unsupported) or the platform exposes no
    /// high-water mark.
    pub fn peak_bytes(&self) -> Option<u64> {
        if self.reset_ok {
            peak_bytes()
        } else {
            None
        }
    }
}

/// Parse one `kB` field out of `/proc/self/status`.
fn read_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn probes_report_plausible_values() {
        let rss = current_bytes().expect("VmRSS available on Linux");
        let peak = peak_bytes().expect("VmHWM available on Linux");
        // A running test binary resides in at least a few hundred KiB
        // and the high-water mark can never lag the current value
        // (modulo the race of reading them separately — allow slack).
        assert!(rss > 100 * 1024, "rss = {rss}");
        assert!(peak + 10 * 1024 * 1024 >= rss, "peak {peak} vs rss {rss}");
    }

    #[test]
    fn unwritable_clear_refs_reports_unsupported() {
        // Simulate a container where procfs rejects the write: the
        // reset must report failure, not error or panic.
        assert!(!reset_peak_at("/proc/self/nonexistent-clear-refs"));
        // A probe whose reset failed yields None from peak_bytes even
        // on platforms where VmHWM itself is readable.
        let probe = PeakProbe { reset_ok: false };
        assert!(!probe.supported());
        assert_eq!(probe.peak_bytes(), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn probe_window_reports_when_supported() {
        let probe = PeakProbe::start();
        if probe.supported() {
            assert!(probe.peak_bytes().is_some());
        } else {
            assert_eq!(probe.peak_bytes(), None);
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn reset_brings_peak_near_current() {
        if !reset_peak() {
            return; // kernel without writable clear_refs
        }
        let rss = current_bytes().unwrap();
        let peak = peak_bytes().unwrap();
        // After a reset the HWM restarts from the current RSS.
        assert!(
            peak <= rss + 64 * 1024 * 1024,
            "peak {peak} should be near rss {rss} after reset"
        );
    }
}
