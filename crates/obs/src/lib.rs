//! Observability layer for the STR reproduction: lock-free counters,
//! gauges, log-bucketed latency histograms, a global named-metric
//! registry with point-in-time snapshots, span-style scoped timers,
//! and a flight recorder of recent structured events.
//!
//! # Near-zero cost when disabled
//!
//! Everything is gated on one process-global `AtomicBool`, off by
//! default. Instrumentation sites use the lazy handles below
//! ([`LazyCounter`] / [`LazyHistogram`]), whose fast path is a single
//! relaxed load-and-branch when the layer is disabled — no clock
//! reads, no atomics RMW, no allocation, no registry lookups. Enabling
//! the layer ([`set_enabled`]) resolves each handle against the global
//! [`Registry`] on first touch and caches the `Arc` in a `OnceLock`.
//!
//! # Metric naming
//!
//! Dotted lowercase paths, coarse-to-fine: `disk.file.read_ns`,
//! `buffer.hits`, `rtree.query.nodes_visited`, `executor.query_ns`.
//! The full list lives in DESIGN.md §Observability.

mod metric;
mod registry;

pub mod flight;
pub mod rss;
pub mod trace;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{histogram_json, MetricValue, Registry, Snapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the observability layer is recording. Relaxed load; the
/// branch predicts cold-off perfectly, so disabled call sites cost one
/// load and a never-taken jump.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the layer on or off process-wide. Metrics recorded while on
/// are retained (the registry is never cleared by toggling).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Snapshot the global registry.
pub fn snapshot() -> Snapshot {
    Registry::global().snapshot()
}

/// A named counter resolved against the global registry on first
/// touch. `const`-constructible so call sites can use a `static`.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Handle to the counter named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &Counter {
        self.cell
            .get_or_init(|| Registry::global().counter(self.name))
    }

    /// Add one iff the layer is enabled.
    #[inline]
    pub fn inc(&self) {
        if enabled() {
            self.get().inc();
        }
    }

    /// Add `n` iff the layer is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.get().add(n);
        }
    }
}

/// A named gauge resolved against the global registry on first touch.
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Handle to the gauge named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &Gauge {
        self.cell
            .get_or_init(|| Registry::global().gauge(self.name))
    }

    /// Overwrite the level iff the layer is enabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.get().set(v);
        }
    }

    /// Add `n` iff the layer is enabled.
    #[inline]
    pub fn add(&self, n: i64) {
        if enabled() {
            self.get().add(n);
        }
    }
}

/// A named histogram resolved against the global registry on first
/// touch.
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Handle to the histogram named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &Histogram {
        self.cell
            .get_or_init(|| Registry::global().histogram(self.name))
    }

    /// Record `v` iff the layer is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.get().record(v);
        }
    }

    /// Start a span-style timer whose elapsed nanoseconds are recorded
    /// into this histogram when the guard drops. Returns `None` when
    /// the layer is disabled, so the clock is never read on the cold
    /// path — bind it to `_guard` and the whole site is one branch.
    #[inline]
    pub fn start(&'static self) -> Option<ScopedTimer> {
        if enabled() {
            Some(ScopedTimer {
                hist: self,
                start: Instant::now(),
            })
        } else {
            None
        }
    }
}

/// RAII timer from [`LazyHistogram::start`]; records elapsed
/// nanoseconds into its histogram on drop.
pub struct ScopedTimer {
    hist: &'static LazyHistogram,
    start: Instant,
}

impl ScopedTimer {
    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        // The guard only exists if the layer was enabled at start; use
        // the direct path so a concurrent disable can't lose the span.
        self.hist.get().record(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag and registry are process-global, so these tests
    // use uniquely named metrics and tolerate other tests toggling.

    #[test]
    fn lazy_counter_respects_enabled_flag() {
        static C: LazyCounter = LazyCounter::new("libtest.gated");
        set_enabled(false);
        C.inc();
        // Disabled increments never resolve nor count. The metric may
        // not even be registered yet.
        set_enabled(true);
        C.inc();
        C.add(2);
        set_enabled(false);
        match snapshot().get("libtest.gated") {
            Some(MetricValue::Counter(n)) => assert_eq!(*n, 3),
            other => panic!("libtest.gated = {other:?}"),
        }
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        static H: LazyHistogram = LazyHistogram::new("libtest.span_ns");
        set_enabled(true);
        {
            let _guard = H.start();
            std::hint::black_box(42);
        }
        set_enabled(false);
        match snapshot().get("libtest.span_ns") {
            Some(MetricValue::Histogram(h)) => assert!(h.count() >= 1),
            other => panic!("libtest.span_ns = {other:?}"),
        }
    }

    #[test]
    fn timer_is_none_when_disabled() {
        static H: LazyHistogram = LazyHistogram::new("libtest.cold_ns");
        set_enabled(false);
        assert!(H.start().is_none());
    }
}
