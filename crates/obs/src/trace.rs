//! Request-scoped span tracing: the layer between the flight recorder's
//! raw event ring and the registry's process-wide aggregates.
//!
//! A [`Span`] is an RAII guard carrying a 64-bit trace id (shared by
//! every span of one logical operation) and a span id / parent id pair.
//! Finished spans are recorded into per-thread ring buffers and stitched
//! into trees ([`stitch`]) only at dump time, so the hot path never
//! touches a global structure beyond one uncontended per-thread mutex.
//!
//! # Context propagation
//!
//! Within a thread, parentage is implicit: [`span`] reads the calling
//! thread's current context and becomes its child. Across threads the
//! context travels *explicitly*: capture [`current`] before spawning,
//! move the (Copy) [`TraceContext`] into the worker, and
//! [`TraceContext::attach`] it there. The executor's batch workers, the
//! external sort's run-former pool, the slab-pack worker pool, and the
//! WAL group-commit path all do exactly this.
//!
//! # Per-span I/O attribution
//!
//! The storage layer bumps thread-local I/O counters
//! ([`io_read`]/[`io_write`]/[`cache_hit`]/[`cache_miss`]) whenever
//! tracing is enabled. A span snapshots them at birth and records the
//! delta at drop, so every span reports the pages, bytes, and cache
//! traffic that happened on its thread during its lifetime. Attribution
//! is *inclusive of same-thread descendants*; work done by children on
//! other threads shows up in those children's own records (roll it up
//! with [`SpanTree::io_rollup`]).
//!
//! # Cost when disabled
//!
//! Every public entry point is gated on one process-global relaxed
//! atomic load, exactly like the metric layer (PR 4's contract): a
//! disabled call site is one load and a never-taken branch — no clock
//! read, no TLS access, no allocation.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Next span id; ids are process-unique and never zero (0 = "no span").
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
/// Root ordinal for sampling decisions.
static ROOT_SEQ: AtomicU64 = AtomicU64::new(0);
/// Record 1-in-N new traces (1 = every trace).
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);
/// Root spans at least this long are promoted to the slow-op log
/// (0 = promotion off).
static SLOW_NS: AtomicU64 = AtomicU64::new(0);
/// Per-thread ring capacity applied to rings created after the store.
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static THREAD_SEQ: AtomicU32 = AtomicU32::new(0);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Sentinel trace id marking an *unsampled* trace: spans exist (to keep
/// sampling decisions per-trace, not per-span) but record nothing, and
/// children short-circuit to `None`.
const SUPPRESSED: u64 = u64::MAX;

/// Default per-thread ring capacity, in span records.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Bounded retention of the slow-op log.
pub const SLOW_LOG_CAPACITY: usize = 32;

/// Whether the trace layer is recording. One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span tracing on or off process-wide. Enabling also installs the
/// bridge that makes the `tracing` facade's spans real (see
/// [`install_tracing_bridge`]). Records already in the rings are kept.
pub fn set_enabled(on: bool) {
    if on {
        install_tracing_bridge();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Record only 1 in `n` new traces (`n <= 1` records every trace).
/// Spans of unsampled traces cost one TLS read and record nothing.
pub fn set_sample_every(n: u64) {
    SAMPLE_EVERY.store(n.max(1), Ordering::Relaxed);
}

/// Promote root spans lasting at least `threshold` to the slow-op log;
/// `Duration::ZERO` turns promotion off.
pub fn set_slow_threshold(threshold: Duration) {
    SLOW_NS.store(threshold.as_nanos() as u64, Ordering::Relaxed);
}

/// Capacity (in records) of rings created for threads that first touch
/// the tracer *after* this call. Existing rings keep their size.
pub fn set_ring_capacity(cap: usize) {
    RING_CAPACITY.store(cap.max(16), Ordering::Relaxed);
}

/// Spans recorded (ring-buffered) since process start.
pub fn spans_recorded() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

/// Span records evicted from a full thread ring before being dumped.
pub fn spans_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---- thread-local I/O attribution -----------------------------------

/// Counters a span attributes to itself: physical page I/O plus buffer
/// cache traffic observed on the span's thread during its lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoCounts {
    /// Physical pages read (terminal disk impls only).
    pub pages_read: u64,
    /// Physical pages written.
    pub pages_written: u64,
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Buffer-pool hits (including coalesced waits).
    pub cache_hits: u64,
    /// Buffer-pool misses (paper's "disk accesses").
    pub cache_misses: u64,
}

impl IoCounts {
    /// Counter movement since `earlier` (all fields are monotone).
    pub fn since(&self, earlier: &IoCounts) -> IoCounts {
        IoCounts {
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
        }
    }

    /// Field-wise sum.
    pub fn add(&self, other: &IoCounts) -> IoCounts {
        IoCounts {
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
        }
    }
}

/// Attribute `pages` physical pages (`bytes` bytes) read on this thread.
/// Called by terminal `Disk` impls next to their registry counters.
#[inline]
pub fn io_read(pages: u64, bytes: u64) {
    if enabled() {
        with_tls(|t| {
            let mut io = t.io.get();
            io.pages_read += pages;
            io.bytes_read += bytes;
            t.io.set(io);
        });
    }
}

/// Attribute `pages` physical pages (`bytes` bytes) written on this
/// thread.
#[inline]
pub fn io_write(pages: u64, bytes: u64) {
    if enabled() {
        with_tls(|t| {
            let mut io = t.io.get();
            io.pages_written += pages;
            io.bytes_written += bytes;
            t.io.set(io);
        });
    }
}

/// Attribute one buffer-pool hit on this thread.
#[inline]
pub fn cache_hit() {
    if enabled() {
        with_tls(|t| {
            let mut io = t.io.get();
            io.cache_hits += 1;
            t.io.set(io);
        });
    }
}

/// Attribute one buffer-pool miss on this thread.
#[inline]
pub fn cache_miss() {
    if enabled() {
        with_tls(|t| {
            let mut io = t.io.get();
            io.cache_misses += 1;
            t.io.set(io);
        });
    }
}

/// This thread's cumulative attributed I/O (mostly for tests).
pub fn thread_io() -> IoCounts {
    with_tls(|t| t.io.get()).unwrap_or_default()
}

// ---- per-thread state ------------------------------------------------

/// One finished span, as recorded into its thread's ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace the span belongs to (== the root's span id).
    pub trace: u64,
    /// Process-unique span id (never 0).
    pub span: u64,
    /// Parent span id; 0 for a trace root.
    pub parent: u64,
    /// Static site name (`"rtree.query"`, `"disk.read"`, …).
    pub name: &'static str,
    /// Ordinal of the recording thread.
    pub thread: u32,
    /// Start, in nanoseconds since the tracer's process epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// I/O attributed to this span (inclusive of same-thread children).
    pub io: IoCounts,
}

impl SpanRecord {
    /// End time in nanoseconds since the tracer epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

struct Ring {
    thread: u32,
    cap: usize,
    slots: Mutex<VecDeque<SpanRecord>>,
}

impl Ring {
    fn push(&self, rec: SpanRecord) {
        let mut slots = self.slots.lock();
        if slots.len() == self.cap {
            slots.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        slots.push_back(rec);
        RECORDED.fetch_add(1, Ordering::Relaxed);
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

struct ThreadState {
    /// (trace id, innermost open span id); (0, 0) = no active trace.
    ctx: Cell<(u64, u64)>,
    io: Cell<IoCounts>,
    ring: Arc<Ring>,
    /// LIFO stack backing the `tracing`-facade bridge.
    facade: RefCell<Vec<Option<Span>>>,
}

thread_local! {
    static TLS: ThreadState = {
        let ring = Arc::new(Ring {
            thread: THREAD_SEQ.fetch_add(1, Ordering::Relaxed),
            cap: RING_CAPACITY.load(Ordering::Relaxed),
            slots: Mutex::new(VecDeque::new()),
        });
        rings().lock().push(ring.clone());
        ThreadState {
            ctx: Cell::new((0, 0)),
            io: Cell::new(IoCounts::default()),
            ring,
            facade: RefCell::new(Vec::new()),
        }
    };
}

/// TLS access that tolerates thread teardown (drops during TLS
/// destruction silently lose their record rather than aborting).
fn with_tls<R>(f: impl FnOnce(&ThreadState) -> R) -> Option<R> {
    TLS.try_with(f).ok()
}

// ---- spans -----------------------------------------------------------

/// RAII span guard from [`span`]. Restores the thread's previous
/// context and records itself into the thread ring on drop. Not `Send`:
/// a span must end on the thread it started on (move a
/// [`TraceContext`] across threads instead).
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    trace: u64,
    id: u64,
    parent: u64,
    name: &'static str,
    prev: (u64, u64),
    start_ns: u64,
    io_at_start: IoCounts,
    _not_send: PhantomData<*const ()>,
}

impl Span {
    /// This span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace this span belongs to (0 when suppressed by sampling).
    pub fn trace_id(&self) -> u64 {
        if self.trace == SUPPRESSED {
            0
        } else {
            self.trace
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end = now_ns();
        with_tls(|t| {
            t.ctx.set(self.prev);
            if self.trace == SUPPRESSED {
                return;
            }
            let rec = SpanRecord {
                trace: self.trace,
                span: self.id,
                parent: self.parent,
                name: self.name,
                thread: t.ring.thread,
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
                io: t.io.get().since(&self.io_at_start),
            };
            t.ring.push(rec);
            if rec.parent == 0 {
                let thr = SLOW_NS.load(Ordering::Relaxed);
                if thr > 0 && rec.dur_ns >= thr {
                    promote_slow(rec);
                }
            }
        });
    }
}

/// Open a span named `name`: a child of the thread's current context,
/// or — with no active context — the root of a new trace (subject to
/// the sampling rate). Returns `None` when tracing is disabled or the
/// context is an unsampled trace's interior, so the disabled path stays
/// one load-and-branch.
#[inline]
pub fn span(name: &'static str) -> Option<Span> {
    if !enabled() {
        return None;
    }
    span_slow(name)
}

#[inline(never)]
fn span_slow(name: &'static str) -> Option<Span> {
    with_tls(|t| {
        let (cur_trace, cur_span) = t.ctx.get();
        if cur_trace == SUPPRESSED {
            return None;
        }
        if cur_trace == 0 {
            // New root: one sampling decision for the whole trace.
            let every = SAMPLE_EVERY.load(Ordering::Relaxed);
            if every > 1
                && !ROOT_SEQ
                    .fetch_add(1, Ordering::Relaxed)
                    .is_multiple_of(every)
            {
                t.ctx.set((SUPPRESSED, 0));
                return Some(Span {
                    trace: SUPPRESSED,
                    id: 0,
                    parent: 0,
                    name,
                    prev: (0, 0),
                    start_ns: 0,
                    io_at_start: IoCounts::default(),
                    _not_send: PhantomData,
                });
            }
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            t.ctx.set((id, id));
            Some(Span {
                trace: id,
                id,
                parent: 0,
                name,
                prev: (0, 0),
                start_ns: now_ns(),
                io_at_start: t.io.get(),
                _not_send: PhantomData,
            })
        } else {
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            t.ctx.set((cur_trace, id));
            Some(Span {
                trace: cur_trace,
                id,
                parent: cur_span,
                name,
                prev: (cur_trace, cur_span),
                start_ns: now_ns(),
                io_at_start: t.io.get(),
                _not_send: PhantomData,
            })
        }
    })
    .flatten()
}

/// The active trace id on this thread (0 when tracing is off, no trace
/// is active, or the active trace is unsampled). The flight recorder
/// tags its ring events with this.
#[inline]
pub fn current_trace_id() -> u64 {
    if !enabled() {
        return 0;
    }
    with_tls(|t| {
        let (trace, _) = t.ctx.get();
        if trace == SUPPRESSED {
            0
        } else {
            trace
        }
    })
    .unwrap_or(0)
}

// ---- cross-thread propagation ---------------------------------------

/// A copyable capture of a thread's span context, for explicit handoff
/// across thread boundaries: capture with [`current`] *before* spawning
/// and [`attach`](TraceContext::attach) inside the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    trace: u64,
    span: u64,
}

impl TraceContext {
    /// The empty context (attaching it is a no-op).
    pub fn none() -> TraceContext {
        TraceContext { trace: 0, span: 0 }
    }

    /// Whether spans opened under this context will join a live trace.
    pub fn is_active(&self) -> bool {
        self.trace != 0 && self.trace != SUPPRESSED
    }

    /// Make this context current on the calling thread until the guard
    /// drops; spans opened meanwhile become children of the captured
    /// span, even though they run on another thread.
    pub fn attach(self) -> AttachGuard {
        let prev = with_tls(|t| {
            let prev = t.ctx.get();
            if self.trace != 0 {
                t.ctx.set((self.trace, self.span));
            }
            prev
        })
        .unwrap_or((0, 0));
        AttachGuard {
            prev,
            installed: self.trace != 0,
            _not_send: PhantomData,
        }
    }
}

/// Capture the calling thread's context ([`TraceContext::none`] when
/// tracing is disabled).
#[inline]
pub fn current() -> TraceContext {
    if !enabled() {
        return TraceContext::none();
    }
    with_tls(|t| {
        let (trace, span) = t.ctx.get();
        TraceContext { trace, span }
    })
    .unwrap_or_else(TraceContext::none)
}

/// Guard from [`TraceContext::attach`]; restores the thread's previous
/// context on drop.
pub struct AttachGuard {
    prev: (u64, u64),
    installed: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if self.installed {
            with_tls(|t| t.ctx.set(self.prev));
        }
    }
}

// ---- dumping, stitching, exporting ----------------------------------

/// Every span record currently retained, across all threads (live and
/// exited), ordered by start time. Non-destructive.
pub fn dump() -> Vec<SpanRecord> {
    let rings: Vec<Arc<Ring>> = rings().lock().clone();
    let mut out = Vec::new();
    for ring in rings {
        out.extend(ring.slots.lock().iter().copied());
    }
    out.sort_by_key(|r| (r.start_ns, r.span));
    out
}

/// Empty every ring and the slow-op log (tests and long-lived servers).
pub fn clear() {
    for ring in rings().lock().iter() {
        ring.slots.lock().clear();
    }
    slow_log().lock().clear();
}

/// One stitched span and its children (children ordered by start time).
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, possibly recorded on other threads.
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    /// Depth of the tree rooted here (a leaf span is depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(SpanTree::depth).max().unwrap_or(0)
    }

    /// Number of spans in the tree rooted here.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanTree::span_count)
            .sum::<usize>()
    }

    /// Total I/O of this subtree. A span's own counters already include
    /// same-thread descendants, so the rollup adds only children that
    /// ran on a *different* thread (see the module docs on attribution).
    pub fn io_rollup(&self) -> IoCounts {
        let mut total = self.record.io;
        for child in &self.children {
            if child.record.thread != self.record.thread {
                total = total.add(&child.io_rollup());
            }
        }
        total
    }

    /// Render the tree as an indented text block (one span per line).
    pub fn render_text(&self) -> String {
        fn go(node: &SpanTree, depth: usize, out: &mut String) {
            let r = &node.record;
            out.push_str(&format!(
                "{:indent$}{} {}ns reads={} writes={} hits={} misses={} [t{}]\n",
                "",
                r.name,
                r.dur_ns,
                r.io.pages_read,
                r.io.pages_written,
                r.io.cache_hits,
                r.io.cache_misses,
                r.thread,
                indent = depth * 2
            ));
            for c in &node.children {
                go(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        go(self, 0, &mut out);
        out
    }
}

/// Stitch flat records into span trees. A record whose parent is absent
/// (evicted from its ring, or still open) becomes a root of its own
/// tree, so the result always accounts for every input record exactly
/// once; children are ordered by start time. Malformed inputs cannot
/// cycle: the tree is built by single parent-attachment, and any
/// parent-cycle's members (unreachable from a root) are emitted as
/// their own roots.
pub fn stitch(records: &[SpanRecord]) -> Vec<SpanTree> {
    use std::collections::HashMap;
    let mut index: HashMap<u64, usize> = HashMap::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        index.insert(r.span, i);
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
    let mut is_child = vec![false; records.len()];
    for (i, r) in records.iter().enumerate() {
        if r.parent != 0 {
            if let Some(&p) = index.get(&r.parent) {
                if p != i {
                    children[p].push(i);
                    is_child[i] = true;
                }
            }
        }
    }
    for kids in &mut children {
        kids.sort_by_key(|&i| (records[i].start_ns, records[i].span));
    }
    // Build bottom-up without recursion: process in reverse start order
    // is not sufficient (cross-thread clock skew is zero here but ids
    // are not ordered), so resolve via explicit DFS with a visited set
    // that breaks any parent cycles defensively.
    fn build(
        i: usize,
        records: &[SpanRecord],
        children: &[Vec<usize>],
        visited: &mut [bool],
    ) -> SpanTree {
        visited[i] = true;
        let mut kids = Vec::with_capacity(children[i].len());
        for &c in &children[i] {
            if !visited[c] {
                kids.push(build(c, records, children, visited));
            }
        }
        SpanTree {
            record: records[i],
            children: kids,
        }
    }
    let mut visited = vec![false; records.len()];
    let mut roots = Vec::new();
    for i in 0..records.len() {
        if !is_child[i] && !visited[i] {
            roots.push(build(i, records, &children, &mut visited));
        }
    }
    // Cycle members are reachable from no root; emit them as roots too
    // (their intra-cycle edge was already severed by the visited set).
    for i in 0..records.len() {
        if !visited[i] {
            roots.push(build(i, records, &children, &mut visited));
        }
    }
    roots.sort_by_key(|t| (t.record.start_ns, t.record.span));
    roots
}

/// Render records as a Chrome `trace_event` JSON document (the format
/// `chrome://tracing` and Perfetto load): complete (`"ph": "X"`) events
/// with microsecond timestamps, one track per recording thread, and the
/// span/trace/parent ids plus per-span I/O attribution in `args`.
pub fn export_chrome(records: &[SpanRecord]) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"str\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \
             \"args\": {{\"trace\": {}, \"span\": {}, \"parent\": {}, \
             \"pages_read\": {}, \"pages_written\": {}, \
             \"bytes_read\": {}, \"bytes_written\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}}}}}",
            r.name,
            r.start_ns as f64 / 1_000.0,
            r.dur_ns as f64 / 1_000.0,
            r.thread,
            r.trace,
            r.span,
            r.parent,
            r.io.pages_read,
            r.io.pages_written,
            r.io.bytes_read,
            r.io.bytes_written,
            r.io.cache_hits,
            r.io.cache_misses,
        );
    }
    out.push_str("]}");
    out
}

// ---- slow-op log -----------------------------------------------------

/// A root span that exceeded the slow threshold, retained with its full
/// child tree as captured at promotion time.
#[derive(Debug, Clone)]
pub struct SlowOp {
    /// The slow root span.
    pub root: SpanRecord,
    /// Every retained span of the root's trace (including the root),
    /// in start order — feed to [`stitch`] for the tree.
    pub spans: Vec<SpanRecord>,
}

fn slow_log() -> &'static Mutex<VecDeque<SlowOp>> {
    static LOG: OnceLock<Mutex<VecDeque<SlowOp>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn promote_slow(root: SpanRecord) {
    let rings: Vec<Arc<Ring>> = rings().lock().clone();
    let mut spans = Vec::new();
    for ring in rings {
        spans.extend(
            ring.slots
                .lock()
                .iter()
                .filter(|r| r.trace == root.trace)
                .copied(),
        );
    }
    spans.sort_by_key(|r| (r.start_ns, r.span));
    let mut log = slow_log().lock();
    if log.len() == SLOW_LOG_CAPACITY {
        log.pop_front();
    }
    log.push_back(SlowOp { root, spans });
}

/// The retained slow operations, oldest first.
pub fn slow_ops() -> Vec<SlowOp> {
    slow_log().lock().iter().cloned().collect()
}

// ---- tracing-facade bridge ------------------------------------------

/// Backend for the `tracing` shim's spans: facade spans opened while
/// tracing is enabled become real [`Span`]s (children of the thread's
/// current context), so instrumentation written against
/// `tracing::span!` lights up with no code change.
struct Bridge;

impl tracing::SpanBackend for Bridge {
    fn enter(&self, name: &'static str) -> usize {
        with_tls(|t| {
            let mut stack = t.facade.borrow_mut();
            stack.push(span(name));
            stack.len()
        })
        .unwrap_or(0)
    }

    fn exit(&self, token: usize) {
        with_tls(|t| {
            let mut stack = t.facade.borrow_mut();
            // Facade guards are !Send and drop LIFO per thread; the
            // assert is debug-only so a logic error can't take down a
            // release process.
            debug_assert_eq!(stack.len(), token, "facade span exit out of order");
            if stack.len() == token {
                stack.pop();
            }
        });
    }
}

/// Install the bridge turning `tracing` facade spans into real spans.
/// Idempotent; called automatically by [`set_enabled`]`(true)`.
pub fn install_tracing_bridge() {
    static BRIDGE: Bridge = Bridge;
    tracing::set_span_backend(&BRIDGE);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that toggle the global tracer.
    fn lock_tracer() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock()
    }

    fn reset() {
        set_sample_every(1);
        set_slow_threshold(Duration::ZERO);
        clear();
    }

    #[test]
    fn disabled_span_is_none() {
        let _g = lock_tracer();
        set_enabled(false);
        assert!(span("off").is_none());
        assert_eq!(current_trace_id(), 0);
        assert!(!current().is_active());
    }

    #[test]
    fn same_thread_nesting_records_parentage() {
        let _g = lock_tracer();
        reset();
        set_enabled(true);
        let (root_id, child_id);
        {
            let root = span("root").unwrap();
            root_id = root.id();
            assert_eq!(current_trace_id(), root.trace_id());
            {
                let child = span("child").unwrap();
                child_id = child.id();
                assert_ne!(child_id, root_id);
            }
        }
        set_enabled(false);
        let records = dump();
        let child = records.iter().find(|r| r.span == child_id).unwrap();
        let root = records.iter().find(|r| r.span == root_id).unwrap();
        assert_eq!(child.parent, root_id);
        assert_eq!(child.trace, root_id);
        assert_eq!(root.parent, 0);
        assert!(child.start_ns >= root.start_ns);
        assert!(child.end_ns() <= root.end_ns());
        let trees = stitch(&records);
        let tree = trees.iter().find(|t| t.record.span == root_id).unwrap();
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.span_count(), 2);
    }

    #[test]
    fn context_attaches_across_threads() {
        let _g = lock_tracer();
        reset();
        set_enabled(true);
        let root_id;
        {
            let root = span("root").unwrap();
            root_id = root.id();
            let ctx = current();
            assert!(ctx.is_active());
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _att = ctx.attach();
                    let _child = span("worker");
                });
            });
        }
        set_enabled(false);
        let records = dump();
        let worker = records.iter().find(|r| r.name == "worker").unwrap();
        assert_eq!(worker.parent, root_id);
        assert_eq!(worker.trace, root_id);
    }

    #[test]
    fn sampling_suppresses_whole_traces() {
        let _g = lock_tracer();
        reset();
        set_enabled(true);
        set_sample_every(1 << 30); // effectively: record almost nothing
                                   // Burn the ordinal so the next root is not the sampled one.
        drop(span("burn"));
        let before = dump().len();
        {
            let _root = span("unsampled");
            // Children of an unsampled trace don't even allocate ids.
            assert!(span("inner").is_none());
            assert_eq!(current_trace_id(), 0);
        }
        set_sample_every(1);
        set_enabled(false);
        assert_eq!(dump().len(), before, "suppressed trace recorded spans");
    }

    #[test]
    fn io_attribution_is_scoped_per_span() {
        let _g = lock_tracer();
        reset();
        set_enabled(true);
        let outer_id;
        let inner_id;
        {
            let outer = span("outer").unwrap();
            outer_id = outer.id();
            io_read(2, 8192);
            {
                let inner = span("inner").unwrap();
                inner_id = inner.id();
                io_read(3, 12288);
                cache_miss();
                cache_hit();
            }
            io_write(1, 4096);
        }
        set_enabled(false);
        let records = dump();
        let inner = records.iter().find(|r| r.span == inner_id).unwrap();
        let outer = records.iter().find(|r| r.span == outer_id).unwrap();
        assert_eq!(inner.io.pages_read, 3);
        assert_eq!(inner.io.cache_misses, 1);
        assert_eq!(inner.io.cache_hits, 1);
        // Outer includes the same-thread child (inclusive attribution).
        assert_eq!(outer.io.pages_read, 5);
        assert_eq!(outer.io.pages_written, 1);
        assert_eq!(outer.io.bytes_written, 4096);
    }

    #[test]
    fn slow_ops_retain_the_child_tree() {
        let _g = lock_tracer();
        reset();
        set_enabled(true);
        set_slow_threshold(Duration::from_nanos(1));
        {
            let _root = span("slow_root").unwrap();
            drop(span("slow_child"));
            std::thread::sleep(Duration::from_millis(2));
        }
        set_slow_threshold(Duration::ZERO);
        set_enabled(false);
        let ops = slow_ops();
        let op = ops
            .iter()
            .find(|o| o.root.name == "slow_root")
            .expect("root promoted");
        assert!(op.spans.iter().any(|s| s.name == "slow_child"));
        let trees = stitch(&op.spans);
        assert!(trees.iter().any(|t| t.depth() >= 2));
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let recs = vec![
            SpanRecord {
                trace: 7,
                span: 7,
                parent: 0,
                name: "root",
                thread: 0,
                start_ns: 1000,
                dur_ns: 5000,
                io: IoCounts {
                    pages_read: 3,
                    ..IoCounts::default()
                },
            },
            SpanRecord {
                trace: 7,
                span: 8,
                parent: 7,
                name: "child",
                thread: 1,
                start_ns: 1500,
                dur_ns: 1000,
                io: IoCounts::default(),
            },
        ];
        let json = export_chrome(&recs);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"pages_read\": 3"));
        assert!(json.contains("\"parent\": 7"));
    }

    #[test]
    fn stitch_orphans_become_roots() {
        let rec = |span, parent, start| SpanRecord {
            trace: 1,
            span,
            parent,
            name: "x",
            thread: 0,
            start_ns: start,
            dur_ns: 1,
            io: IoCounts::default(),
        };
        // 10's parent (99) was evicted; 11 is 10's child.
        let records = vec![rec(10, 99, 5), rec(11, 10, 6), rec(12, 0, 1)];
        let trees = stitch(&records);
        assert_eq!(trees.len(), 2);
        let total: usize = trees.iter().map(SpanTree::span_count).sum();
        assert_eq!(total, 3, "every record appears exactly once");
    }

    #[test]
    fn facade_spans_light_up_via_bridge() {
        let _g = lock_tracer();
        reset();
        set_enabled(true);
        {
            let _root = span("root").unwrap();
            let _facade = tracing::debug_span!("facade.child").entered();
        }
        set_enabled(false);
        let records = dump();
        let facade = records
            .iter()
            .find(|r| r.name == "facade.child")
            .expect("facade span recorded");
        let root = records.iter().find(|r| r.name == "root").unwrap();
        assert_eq!(facade.parent, root.span);
    }
}
