//! Global named-metric registry and point-in-time snapshots.
//!
//! Metrics are registered on first use and live for the process. The
//! registry map is behind an `RwLock`, but hot paths never touch it:
//! instrumentation sites hold `Arc`s to their metrics (via the lazy
//! handles in the crate root) and update them lock-free. The lock is
//! taken only on first registration and on snapshot.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Process-global registry of named metrics.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<&'static str, Metric>>,
}

impl Registry {
    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// Get or register the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.metrics.read().get(name) {
            return c.clone();
        }
        match self
            .metrics
            .write()
            .entry(name)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Get or register the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.metrics.read().get(name) {
            return g.clone();
        }
        match self
            .metrics
            .write()
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Get or register the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.metrics.read().get(name) {
            return h.clone();
        }
        match self
            .metrics
            .write()
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.read();
        let entries = metrics
            .iter()
            .map(|(&name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name, v)
            })
            .collect();
        Snapshot { entries }
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotone count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Full distribution.
    Histogram(HistogramSnapshot),
}

/// Point-in-time copy of the registry, ordered by metric name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    entries: BTreeMap<&'static str, MetricValue>,
}

impl Snapshot {
    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &MetricValue)> {
        self.entries.iter().map(|(&n, v)| (n, v))
    }

    /// Look up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metrics were registered at capture time.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Human-readable one-metric-per-line rendering; histograms show
    /// count/mean/percentiles.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in self.iter() {
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name} = {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name} = {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name}: count={} mean={:.1} p50={} p90={} p99={} max={}",
                        h.count(),
                        h.mean(),
                        h.percentile(0.50),
                        h.percentile(0.90),
                        h.percentile(0.99),
                        h.max()
                    );
                }
            }
        }
        out
    }

    /// JSON object rendering: counters and gauges as numbers,
    /// histograms as `{count, sum, mean, min, max, p50, p90, p99}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{");
        for (i, (name, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": ");
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(out, "{g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, "{}", histogram_json(h));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Render one histogram snapshot as a JSON object. Shared by the
/// snapshot renderer, the CLI, and the bench artifact writers so the
/// schema stays identical everywhere.
pub fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"min\": {}, \"max\": {}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
        h.count(),
        h.sum(),
        h.mean(),
        h.min(),
        h.max(),
        h.percentile(0.50),
        h.percentile(0.90),
        h.percentile(0.99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_snapshot() {
        let r = Registry::default();
        r.counter("test.a").add(3);
        r.gauge("test.b").set(-2);
        r.histogram("test.c").record(100);
        // Second lookup returns the same instance.
        r.counter("test.a").inc();

        let s = r.snapshot();
        assert_eq!(s.len(), 3);
        match s.get("test.a") {
            Some(MetricValue::Counter(4)) => {}
            other => panic!("test.a = {other:?}"),
        }
        match s.get("test.b") {
            Some(MetricValue::Gauge(-2)) => {}
            other => panic!("test.b = {other:?}"),
        }
        let text = s.render_text();
        assert!(text.contains("test.a = 4"));
        assert!(text.contains("p99="));
        let json = s.to_json();
        assert!(json.contains("\"test.a\": 4"));
        assert!(json.contains("\"p50\":"));
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_conflict_panics() {
        let r = Registry::default();
        r.counter("test.conflict");
        r.gauge("test.conflict");
    }
}
