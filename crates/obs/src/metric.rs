//! Lock-free metric primitives: [`Counter`], [`Gauge`], and a
//! log-bucketed [`Histogram`] mergeable across threads.
//!
//! The histogram uses log-linear bucketing: 8 linear sub-buckets per
//! power-of-two octave, so any recorded value lands in a bucket whose
//! width is at most 1/8 of its lower bound. Percentile estimates are
//! therefore within +12.5% of the true value, which is ample for
//! latency distributions spanning nanoseconds to seconds. All updates
//! are relaxed atomic increments — recording never takes a lock and
//! never allocates.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (e.g. resident pages, in-flight queries).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two octave. Bucket width ≤ lower_bound/8,
/// bounding the relative quantization error at 12.5%.
const SUBS: u64 = 8;
/// Values 0..8 get exact buckets; octaves 3..=63 get 8 buckets each.
pub(crate) const NUM_BUCKETS: usize = (SUBS + 61 * SUBS) as usize; // 496

/// Bucket index for a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        // Highest set bit h >= 3; the 3 bits below it pick the
        // sub-bucket within the octave.
        let h = 63 - v.leading_zeros() as u64;
        ((h - 2) * SUBS + ((v >> (h - 3)) & (SUBS - 1))) as usize
    }
}

/// Inclusive upper bound of the values mapping to bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBS {
        i
    } else {
        let h = i / SUBS + 2;
        let sub = i % SUBS;
        // Lower bound is (1<<h) + sub * 2^(h-3); width is 2^(h-3).
        // Adding width-1 (not width, then -1) keeps the top bucket's
        // bound at exactly u64::MAX without overflowing.
        let low = (1u64 << h) + (sub << (h - 3));
        low + ((1u64 << (h - 3)) - 1)
    }
}

/// Thread-safe log-bucketed histogram. Record with [`record`]; read
/// with [`snapshot`]; two histograms recorded on different threads
/// merge exactly (bucket-wise addition).
///
/// [`record`]: Histogram::record
/// [`snapshot`]: Histogram::snapshot
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free; safe from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy. Concurrent recorders may land between the
    /// bucket reads, so a snapshot taken during traffic can be off by
    /// the handful of in-flight observations — never torn within one
    /// bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// Immutable copy of a [`Histogram`]'s state; supports percentile
/// queries and exact merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated value at quantile `q` in [0, 1]: the inclusive upper
    /// bound of the bucket holding the q-th observation, clamped to the
    /// recorded maximum. Overestimates by at most 12.5%.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge `other` into `self`. Exact: the result is identical to a
    /// histogram that recorded both observation streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // The live histogram's atomic sum wraps on overflow; wrapping
        // here keeps merge exactly equal to combined recording.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs — the wire
    /// form used by JSON renderings.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "bucket index not monotone at {v}");
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_contain_their_values() {
        for v in [0u64, 3, 7, 8, 12, 255, 256, 1 << 13, (1 << 13) + 511] {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "value {v} fits earlier bucket");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.01), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 7);
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum(), 28);
    }

    #[test]
    fn percentiles_clamp_to_max() {
        let h = Histogram::new();
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 1000);
        assert_eq!(s.percentile(0.99), 1000);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [1u64, 50, 900, 17] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 70_000, 12] {
            b.record(v);
            both.record(v);
        }
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa, both.snapshot());
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
