//! Fixed-size lock-free flight recorder of recent structured events.
//!
//! A power-of-two ring of seqlock-style slots. Writers claim a global
//! ticket with one `fetch_add`, CAS the target slot's sequence word
//! from its expected previous-generation value to an odd in-progress
//! marker, write the payload, then publish with an even marker. If the
//! CAS fails the slot has been lapped by a faster writer (or its
//! previous owner is still mid-write) and the event is dropped — that
//! keeps the recorder wait-free for writers and guarantees a reader
//! never observes fields from two different events mixed in one slot.
//!
//! Readers ([`FlightRecorder::dump`]) scan every slot, skip odd or
//! changed sequences, and sort surviving events by ticket, yielding
//! the most recent events in the order their tickets were issued.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// What happened. Payload meaning of [`Event::a`]/[`Event::b`] is
/// per-kind and documented on each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Disk page read. a = page index, b = bytes.
    PageRead = 1,
    /// Disk page write. a = page index, b = bytes.
    PageWrite = 2,
    /// Buffer-pool eviction. a = page index, b = 1 if it was dirty.
    Eviction = 3,
    /// Dirty page written back. a = page index.
    Writeback = 4,
    /// Injected fault fired. a = operation (0 read / 1 write),
    /// b = fault kind ordinal.
    FaultFired = 5,
    /// Node split during insert. a = node page, b = new sibling page.
    Split = 6,
    /// Orphan re-inserted during delete. a = subtree level.
    Reinsert = 7,
    /// Query began. a = query ordinal.
    QueryStart = 8,
    /// Query finished. a = query ordinal, b = nodes visited.
    QueryEnd = 9,
    /// A tree transitioned to the sticky poisoned state. a = root page.
    TreePoisoned = 10,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::PageRead,
            2 => EventKind::PageWrite,
            3 => EventKind::Eviction,
            4 => EventKind::Writeback,
            5 => EventKind::FaultFired,
            6 => EventKind::Split,
            7 => EventKind::Reinsert,
            8 => EventKind::QueryStart,
            9 => EventKind::QueryEnd,
            10 => EventKind::TreePoisoned,
            _ => return None,
        })
    }

    /// Stable lowercase name used in dumps and JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PageRead => "page_read",
            EventKind::PageWrite => "page_write",
            EventKind::Eviction => "eviction",
            EventKind::Writeback => "writeback",
            EventKind::FaultFired => "fault_fired",
            EventKind::Split => "split",
            EventKind::Reinsert => "reinsert",
            EventKind::QueryStart => "query_start",
            EventKind::QueryEnd => "query_end",
            EventKind::TreePoisoned => "tree_poisoned",
        }
    }
}

/// One recovered flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global issue order (gaps mean dropped or still-in-flight slots).
    pub ticket: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (usually a page index).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
    /// Nanoseconds since the recorder was created.
    pub t_ns: u64,
    /// Active trace id on the recording thread (0 = no active trace).
    /// Lets `flight-dump` output be correlated with exported traces.
    pub trace: u64,
}

struct Slot {
    /// 0 = never written; odd = write in progress for ticket
    /// (seq-1)/2; even = published for ticket (seq-2)/2.
    seq: AtomicU64,
    kind: AtomicU8,
    a: AtomicU64,
    b: AtomicU64,
    t_ns: AtomicU64,
    trace: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            kind: AtomicU8::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            trace: AtomicU64::new(0),
        }
    }
}

/// Lock-free ring buffer of the most recent [`Event`]s.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped because their slot was lapped mid-claim. Nonzero
    /// only under extreme contention (writers more than one full ring
    /// apart in flight at once).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one event. Wait-free: one `fetch_add` plus one CAS.
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        self.record_traced(kind, a, b, 0);
    }

    /// Record one event tagged with the trace id active on the calling
    /// thread (0 = untraced). Same wait-free protocol as [`record`](Self::record).
    pub fn record_traced(&self, kind: EventKind, a: u64, b: u64, trace: u64) {
        let cap = self.slots.len() as u64;
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & (cap - 1)) as usize];
        // Claim from whatever even (quiescent) state the slot is in,
        // provided no newer generation has already published there.
        // CAS-from-observed means a dropped claim never wedges the
        // slot: the next lap claims from the surviving value. The odd
        // in-progress marker plus the CAS guarantee single ownership,
        // so payload words can't mix across events.
        let cur = slot.seq.load(Ordering::Acquire);
        if cur % 2 == 1 || cur > 2 * ticket + 1 {
            // Mid-write by another ticket, or a newer event already
            // landed here (this writer was lapped before claiming).
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot
            .seq
            .compare_exchange(cur, 2 * ticket + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.kind.store(kind as u8, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.t_ns
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Recover every consistent published event, oldest ticket first.
    pub fn dump(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 || seq % 2 == 1 {
                continue; // never written, or write in progress
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let trace = slot.trace.load(Ordering::Relaxed);
            // Seqlock validation: a writer that claimed the slot while
            // we read would have changed seq.
            if slot.seq.load(Ordering::Acquire) != seq {
                continue;
            }
            let Some(kind) = EventKind::from_u8(kind) else {
                continue;
            };
            out.push(Event {
                ticket: (seq - 2) / 2,
                kind,
                a,
                b,
                t_ns,
                trace,
            });
        }
        out.sort_unstable_by_key(|e| e.ticket);
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.cursor.load(Ordering::Relaxed))
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Default capacity of the process-global recorder.
pub const GLOBAL_CAPACITY: usize = 4096;

/// The process-global flight recorder.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::new(GLOBAL_CAPACITY))
}

/// Record into the global recorder iff observability is enabled,
/// tagging the event with the thread's active trace id (if any) so
/// dumps can be correlated with exported span traces.
#[inline]
pub fn record(kind: EventKind, a: u64, b: u64) {
    if crate::enabled() {
        global().record_traced(kind, a, b, crate::trace::current_trace_id());
    }
}

/// Render one event as a stable single-line form used by dumps. Traced
/// events carry a trailing `trace=<id>` matching the `args.trace` field
/// of the Chrome trace_event export.
pub fn format_event(e: &Event) -> String {
    let mut line = format!(
        "#{:<8} +{:>12}ns {:<13} a={} b={}",
        e.ticket,
        e.t_ns,
        e.kind.name(),
        e.a,
        e.b
    );
    if e.trace != 0 {
        line.push_str(&format!(" trace={}", e.trace));
    }
    line
}

/// Dump the global recorder to stderr via `tracing::warn!`. Called
/// automatically when a tree poisons; available on demand from the CLI.
pub fn dump_to_stderr(reason: &str) {
    let events = global().dump();
    tracing::warn!(
        "flight recorder dump ({reason}): {} events, {} dropped",
        events.len(),
        global().dropped()
    );
    for e in &events {
        tracing::warn!("{}", format_event(e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_dumps_in_order() {
        let r = FlightRecorder::new(16);
        for i in 0..10u64 {
            r.record(EventKind::PageRead, i, i * 2);
        }
        let events = r.dump();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ticket, i as u64);
            assert_eq!(e.a, i as u64);
            assert_eq!(e.b, 2 * i as u64);
            assert_eq!(e.kind, EventKind::PageRead);
        }
    }

    #[test]
    fn wraparound_keeps_most_recent() {
        let r = FlightRecorder::new(8);
        for i in 0..20u64 {
            r.record(EventKind::Eviction, i, 0);
        }
        let events = r.dump();
        assert_eq!(events.len(), 8);
        // Single-threaded: no drops, exactly the last 8 tickets.
        assert_eq!(r.dropped(), 0);
        let tickets: Vec<u64> = events.iter().map(|e| e.ticket).collect();
        assert_eq!(tickets, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn trace_tag_round_trips_and_formats() {
        let r = FlightRecorder::new(8);
        r.record(EventKind::PageRead, 1, 4096);
        r.record_traced(EventKind::PageRead, 2, 4096, 77);
        let events = r.dump();
        assert_eq!(events[0].trace, 0);
        assert_eq!(events[1].trace, 77);
        assert!(!format_event(&events[0]).contains("trace="));
        assert!(format_event(&events[1]).ends_with("trace=77"));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FlightRecorder::new(0).capacity(), 8);
        assert_eq!(FlightRecorder::new(100).capacity(), 128);
        assert_eq!(FlightRecorder::new(128).capacity(), 128);
    }
}
