//! Property tests for span-tree stitching: arbitrary span
//! interleavings across several worker threads must always reconstruct
//! valid trees — every recorded span's parent exists and carries the
//! same trace id, the forest contains every record exactly once (no
//! cycles, no duplication), and child spans start no earlier than
//! their parents.

use obs::trace::{self, SpanTree};
use proptest::prelude::*;
use std::collections::HashMap;

/// Run one generated schedule: a root span on the driving thread,
/// `ops.len()` workers attached to its context, each pushing (true) and
/// popping (false) spans per its op list. Returns the records of
/// exactly this trace.
fn run_schedule(ops: &[Vec<bool>]) -> (u64, Vec<trace::SpanRecord>) {
    trace::set_enabled(true);
    trace::clear();
    let root_id;
    {
        let root = trace::span("root").expect("tracing enabled");
        root_id = root.id();
        let ctx = trace::current();
        std::thread::scope(|scope| {
            for thread_ops in ops {
                scope.spawn(move || {
                    let _attached = ctx.attach();
                    let mut stack = Vec::new();
                    for &push in thread_ops {
                        if push {
                            stack.push(trace::span("work").expect("tracing enabled"));
                        } else {
                            drop(stack.pop());
                        }
                    }
                    // Remaining spans unwind LIFO as the stack drops.
                });
            }
        });
    }
    trace::set_enabled(false);
    let records = records_of(root_id);
    (root_id, records)
}

fn records_of(trace_id: u64) -> Vec<trace::SpanRecord> {
    trace::dump()
        .into_iter()
        .filter(|r| r.trace == trace_id)
        .collect()
}

fn forest_size(trees: &[SpanTree]) -> usize {
    trees.iter().map(SpanTree::span_count).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ≥4 threads, arbitrary push/pop interleavings: the stitched
    /// forest is a single tree rooted at the root span, accounts for
    /// every record exactly once, and every parent edge is valid.
    #[test]
    fn stitching_reconstructs_valid_trees(
        ops in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 1..40),
            4..6,
        ),
    ) {
        let (root_id, records) = run_schedule(&ops);
        let expected_spans = 1 + ops
            .iter()
            .flatten()
            .filter(|&&push| push)
            .count();
        prop_assert_eq!(records.len(), expected_spans, "one record per opened span");

        let by_id: HashMap<u64, &trace::SpanRecord> =
            records.iter().map(|r| (r.span, r)).collect();
        for r in &records {
            if r.span == root_id {
                prop_assert_eq!(r.parent, 0, "the root has no parent");
                continue;
            }
            // Every non-root span's parent exists in the same trace...
            let parent = by_id.get(&r.parent);
            prop_assert!(parent.is_some(), "span {} orphaned (parent {})", r.span, r.parent);
            let parent = parent.unwrap();
            prop_assert_eq!(parent.trace, r.trace, "parent in a different trace");
            // ...and started no later (ids share one global clock).
            prop_assert!(
                parent.start_ns <= r.start_ns,
                "child {} starts before parent {}",
                r.span,
                parent.span
            );
        }

        // Stitching yields one tree holding every record: presence of a
        // cycle or a dangling edge would change the forest size.
        let trees = trace::stitch(&records);
        prop_assert_eq!(trees.len(), 1, "all spans reachable from the root");
        prop_assert_eq!(trees[0].record.span, root_id);
        prop_assert_eq!(forest_size(&trees), records.len());
    }

    /// Stitching arbitrary (possibly malformed) record sets never loses
    /// or duplicates a record and never cycles: the forest size always
    /// equals the input size, even when parents point at evicted,
    /// unknown, or mutually-referencing spans.
    #[test]
    fn stitching_is_total_on_malformed_input(
        edges in prop::collection::vec((1..24u64, 0..24u64, 0..1000u64), 1..24),
    ) {
        let mut records: Vec<trace::SpanRecord> = Vec::new();
        for (i, &(span, parent, start)) in edges.iter().enumerate() {
            // Distinct span ids (stitch indexes by id); parents are
            // unconstrained — self-loops, unknowns, cross-references.
            let span = span + (i as u64) * 24;
            records.push(trace::SpanRecord {
                trace: 1,
                span,
                parent,
                name: "m",
                thread: (i % 3) as u32,
                start_ns: start,
                dur_ns: 1,
                io: trace::IoCounts::default(),
            });
        }
        let trees = trace::stitch(&records);
        prop_assert_eq!(forest_size(&trees), records.len());
    }
}
