//! Registry snapshot determinism: with no intervening metric activity,
//! two snapshots must be byte-identical in every rendering, and
//! iteration must be stable and sorted by metric name — exporters and
//! the CI overhead gate both diff snapshot output textually.

use obs::{MetricValue, Registry};
use std::sync::Mutex;

/// The registry is process-global; serialize the tests in this binary
/// so neither mutates it between the other's paired snapshots.
static GATE: Mutex<()> = Mutex::new(());

#[test]
fn consecutive_snapshots_are_identical() {
    let _g = GATE.lock().unwrap();
    obs::set_enabled(true);
    let reg = Registry::global();
    reg.counter("determinism.count").add(7);
    reg.gauge("determinism.level").set(-3);
    reg.histogram("determinism.lat_ns").record(1500);

    let a = obs::snapshot();
    let b = obs::snapshot();

    assert_eq!(a.len(), b.len());
    assert_eq!(a.render_text(), b.render_text());
    assert_eq!(a.to_json(), b.to_json());
    for ((name_a, val_a), (name_b, val_b)) in a.iter().zip(b.iter()) {
        assert_eq!(name_a, name_b);
        match (val_a, val_b) {
            (MetricValue::Counter(x), MetricValue::Counter(y)) => assert_eq!(x, y),
            (MetricValue::Gauge(x), MetricValue::Gauge(y)) => assert_eq!(x, y),
            (MetricValue::Histogram(x), MetricValue::Histogram(y)) => {
                assert_eq!(x.count(), y.count());
                assert_eq!(x.sum(), y.sum());
            }
            _ => panic!("{name_a}: metric kind changed between snapshots"),
        }
    }
}

#[test]
fn iteration_is_sorted_by_name() {
    let _g = GATE.lock().unwrap();
    obs::set_enabled(true);
    let reg = Registry::global();
    // Registered deliberately out of order.
    reg.counter("sorted.zz").inc();
    reg.counter("sorted.aa").inc();
    reg.counter("sorted.mm").inc();

    let snap = obs::snapshot();
    let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "snapshot iteration must be name-sorted");
    assert!(names.contains(&"sorted.aa"));

    // And the ordering survives re-snapshotting.
    let again: Vec<&str> = obs::snapshot().iter().map(|(n, _)| n).collect();
    assert_eq!(names, again);
}
