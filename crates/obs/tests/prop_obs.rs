//! Property tests for the histogram: percentile estimates against a
//! sorted-vector oracle, and merge associativity/commutativity —
//! merging per-thread histograms must behave like one histogram that
//! saw every observation, in any merge order.

use obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = u64> {
    // Span several octaves plus the exact small-value range.
    prop_oneof![0..16u64, 16..4096u64, 4096..10_000_000u64, Just(u64::MAX),]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The estimate for quantile q must sit at or above the oracle
    /// value (bucket upper bounds never round down) and within the
    /// 12.5% relative-error bound of the log-linear bucketing.
    #[test]
    fn percentile_brackets_sorted_oracle(
        mut values in prop::collection::vec(value_strategy(), 1..200),
        qi in 0..101u32,
    ) {
        let q = qi as f64 / 100.0;
        let snap = snapshot_of(&values);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let oracle = values[rank - 1];

        let est = snap.percentile(q);
        prop_assert!(est >= oracle, "estimate {est} below oracle {oracle} at q={q}");
        // Bucket width is at most oracle/8 (+1 covers integer truncation
        // of the bound arithmetic at tiny values).
        let bound = oracle.saturating_add(oracle / 8).saturating_add(1);
        prop_assert!(
            est <= bound.min(snap.max()),
            "estimate {est} exceeds error bound {bound} (oracle {oracle}, q={q})"
        );
    }

    /// min/max/sum/count/mean agree exactly with the oracle.
    #[test]
    fn moments_are_exact(values in prop::collection::vec(0..1_000_000u64, 1..200)) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(snap.min(), *values.iter().min().unwrap());
        prop_assert_eq!(snap.max(), *values.iter().max().unwrap());
        let mean = snap.sum() as f64 / snap.count() as f64;
        prop_assert!((snap.mean() - mean).abs() < 1e-9);
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == histogram of a ++ b ++ c, and
    /// merge order never matters.
    #[test]
    fn merge_is_associative_and_matches_union(
        a in prop::collection::vec(value_strategy(), 0..60),
        b in prop::collection::vec(value_strategy(), 0..60),
        c in prop::collection::vec(value_strategy(), 0..60),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);

        let mut union: Vec<u64> = a.clone();
        union.extend(&b);
        union.extend(&c);
        let oracle = snapshot_of(&union);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &oracle);
    }

    /// Merging an empty snapshot is the identity.
    #[test]
    fn empty_is_merge_identity(values in prop::collection::vec(value_strategy(), 0..60)) {
        let s = snapshot_of(&values);
        let mut merged = s.clone();
        merged.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&merged, &s);

        let mut other_way = HistogramSnapshot::empty();
        other_way.merge(&s);
        prop_assert_eq!(&other_way, &s);
    }
}

/// Concurrent recording loses nothing: 8 threads × disjoint value
/// streams, the final snapshot must equal the sequential union.
#[test]
fn concurrent_recording_is_lossless() {
    const THREADS: u64 = 8;
    const PER: u64 = 5_000;
    let h = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER {
                    h.record(t * 1_000_000 + i * 37);
                }
            });
        }
    });
    let all: Vec<u64> = (0..THREADS)
        .flat_map(|t| (0..PER).map(move |i| t * 1_000_000 + i * 37))
        .collect();
    assert_eq!(h.snapshot(), snapshot_of(&all));
}
