//! Flight-recorder contract under contention: 8 writer threads
//! hammering one small ring must never produce a torn event (payload
//! words from two different records mixed in one slot), and the dump
//! must preserve each thread's program order.

use std::sync::Barrier;

use obs::flight::{EventKind, FlightRecorder};

/// Payload encoding: a = thread*1e9 + i, b = a * 2 + 1. A torn slot
/// would break the a/b relation; tickets out of order within one
/// thread would break monotonicity.
#[test]
fn eight_threads_no_tearing_and_per_thread_order() {
    const THREADS: u64 = 8;
    const PER: u64 = 20_000;
    const CAP: usize = 1024;

    let rec = FlightRecorder::new(CAP);
    let start = Barrier::new(THREADS as usize);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = &rec;
            let start = &start;
            scope.spawn(move || {
                start.wait();
                for i in 0..PER {
                    let a = t * 1_000_000_000 + i;
                    rec.record(EventKind::PageRead, a, a * 2 + 1);
                }
            });
        }
    });

    let events = rec.dump();
    assert!(!events.is_empty());
    assert!(events.len() <= CAP, "dump larger than ring");

    let mut last_ticket = None;
    let mut last_i_per_thread = [None::<u64>; THREADS as usize];
    for e in &events {
        // Global ticket order is strictly increasing in the dump.
        assert!(Some(e.ticket) > last_ticket, "dump not sorted by ticket");
        last_ticket = Some(e.ticket);
        // No tearing: b must match a exactly.
        assert_eq!(e.b, e.a * 2 + 1, "torn event at ticket {}", e.ticket);
        assert_eq!(e.kind, EventKind::PageRead);
        // Per-thread program order survives: later records by one
        // thread get later tickets.
        let t = (e.a / 1_000_000_000) as usize;
        let i = e.a % 1_000_000_000;
        assert!(t < THREADS as usize);
        if let Some(prev) = last_i_per_thread[t] {
            assert!(i > prev, "thread {t} order inverted: {i} after {prev}");
        }
        last_i_per_thread[t] = Some(i);
    }

    // Recency: among the last `CAP + dropped` tickets issued, at most
    // `dropped` can have been lost, so at least one published — and the
    // newest published event always survives in its slot (no older
    // claim can overwrite a newer publish). The dump must therefore
    // reach into that window; ancient generations can't wedge slots.
    let total = THREADS * PER;
    let window = (CAP as u64).saturating_add(rec.dropped());
    let newest = events.last().unwrap().ticket;
    assert!(
        newest >= total.saturating_sub(window),
        "newest dumped ticket {newest} older than the last {window} of {total} records"
    );
}

/// Drops only ever happen under lapping races; the counter must
/// account for them and a quiescent ring must still dump consistently.
#[test]
fn dropped_counter_accounts_for_lost_slots() {
    const THREADS: u64 = 8;
    const PER: u64 = 50_000;
    const CAP: usize = 8; // tiny ring maximizes lap pressure

    let rec = FlightRecorder::new(CAP);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = &rec;
            scope.spawn(move || {
                for i in 0..PER {
                    rec.record(EventKind::Eviction, t, i);
                }
            });
        }
    });
    let events = rec.dump();
    assert!(events.len() <= CAP);
    // Quiescent: every surviving slot is consistent.
    for e in &events {
        assert_eq!(e.kind, EventKind::Eviction);
        assert!(e.a < THREADS && e.b < PER);
    }
    assert!(
        rec.dropped() <= THREADS * PER,
        "drop counter overflowed the record count"
    );
}

/// Readers racing writers: dumps taken mid-flight never yield torn
/// events either.
#[test]
fn dump_during_traffic_is_consistent() {
    const CAP: usize = 64;
    let rec = FlightRecorder::new(CAP);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let rec = &rec;
            scope.spawn(move || {
                for i in 0..30_000u64 {
                    let a = t * 1_000_000_000 + i;
                    rec.record(EventKind::PageWrite, a, a * 2 + 1);
                }
            });
        }
        for _ in 0..200 {
            for e in rec.dump() {
                assert_eq!(e.b, e.a * 2 + 1, "torn event read during traffic");
            }
        }
    });
}
