//! LSM-style spatial ingestion over the flat tier.
//!
//! The STR paper gives bulk-load-quality packing but no story for
//! sustained inserts. This crate closes that gap the LSM way, with the
//! paper's own machinery at every layer:
//!
//! * writes land in a small in-memory **memtable** ordered by the
//!   Hilbert index of each rectangle's center (the "Simpler is Faster"
//!   observation: sorting along a space-filling curve is itself a
//!   competitive index), logged as WAL notes before acknowledgement;
//! * a full memtable is **sealed** and drained by background compaction
//!   through the out-of-core STR build
//!   ([`str_core::pack_str_external_to_flat`]) into a new immutable
//!   flat segment ([`flat::FlatTree`]) — ingest sustains near bulk-load
//!   throughput while queries keep STR-packed locality;
//! * the drain **commits with an atomic catalog flip**: segment bytes
//!   durable, segment meta page durable, one WAL flip note (the commit
//!   point), then one format-v2 superblock write that adds the new
//!   catalog entry, drops any replaced ones, and advances the WAL
//!   watermark indivisibly. Recovery re-executes committed flips the
//!   superblock missed and discards uncommitted ones, so a crash at any
//!   sync point loses **zero acknowledged inserts** (see DESIGN.md §15
//!   for the atomicity argument);
//! * every component — memtable, each flat level, and the composed
//!   [`LsmTree`] — implements [`rtree::SpatialIndex`], so the executor,
//!   the CLI, and the differential suites run unchanged over it.

mod codec;
mod memtable;
mod segstore;
mod tree;

pub use codec::{FlipNote, InsertNote, Note, SegmentMeta};
pub use memtable::Memtable;
pub use segstore::{FileSegmentStore, MemSegmentStore, SegmentStore};
pub use tree::{LsmOptions, LsmStats, LsmTree};

/// Errors from the LSM tier.
#[derive(Debug)]
pub enum LsmError {
    /// Storage-layer failure (disk, WAL, allocator, segment store).
    Storage(storage::StorageError),
    /// Paged-tree failure inside a drain.
    Tree(rtree::RTreeError),
    /// Flat-tier failure loading or validating a segment.
    Flat(flat::FlatError),
    /// The external pack pipeline failed mid-drain.
    Pack(str_core::ExternalPackError),
    /// Persistent state that violates the commit protocol's invariants.
    Corrupt(String),
}

impl std::fmt::Display for LsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LsmError::Storage(e) => write!(f, "storage: {e}"),
            LsmError::Tree(e) => write!(f, "tree: {e}"),
            LsmError::Flat(e) => write!(f, "flat segment: {e}"),
            LsmError::Pack(e) => write!(f, "compaction drain: {e}"),
            LsmError::Corrupt(msg) => write!(f, "lsm state corrupt: {msg}"),
        }
    }
}

impl std::error::Error for LsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LsmError::Storage(e) => Some(e),
            LsmError::Tree(e) => Some(e),
            LsmError::Flat(e) => Some(e),
            LsmError::Pack(e) => Some(e),
            LsmError::Corrupt(_) => None,
        }
    }
}

impl From<storage::StorageError> for LsmError {
    fn from(e: storage::StorageError) -> Self {
        LsmError::Storage(e)
    }
}

impl From<rtree::RTreeError> for LsmError {
    fn from(e: rtree::RTreeError) -> Self {
        LsmError::Tree(e)
    }
}

impl From<flat::FlatError> for LsmError {
    fn from(e: flat::FlatError) -> Self {
        LsmError::Flat(e)
    }
}

impl From<str_core::ExternalPackError> for LsmError {
    fn from(e: str_core::ExternalPackError) -> Self {
        LsmError::Pack(e)
    }
}

impl From<std::io::Error> for LsmError {
    fn from(e: std::io::Error) -> Self {
        LsmError::Storage(storage::StorageError::Io(e))
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, LsmError>;
