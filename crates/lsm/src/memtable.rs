//! The in-memory write buffer: Hilbert-keyed rectangles in insertion
//! order, curve-sorted when drained.
//!
//! Each entry carries the Hilbert index of its rectangle's center (the
//! order-preserving f64 embedding from [`hilbert`]) computed at insert
//! time; [`Memtable::items_ordered`] sorts by that key (plus a unique
//! sequence number, so equal centers never collide) to give a
//! compaction drain the space-filling-curve order it wants. The paper's
//! "Simpler is Faster" reference makes curve-sorted data itself a
//! competitive index; for the memtable's small bound we serve queries
//! with a plain scan over the contiguous entry vector — cheaper than
//! maintaining any tree shape on a structure that is capped at a few
//! thousand entries and rebuilt from the WAL on every recovery anyway,
//! and the one sort per drain is noise next to the STR pack that
//! follows it.

use std::sync::atomic::{AtomicU64, Ordering};

use geom::Rect;
use hilbert::hilbert_index_f64;
use parking_lot::RwLock;
use rtree::{IndexStats, SpatialIndex};

/// Approximate in-memory bytes per entry (Hilbert key + seq + rect +
/// payload), for the `lsm.memtable_bytes` gauge and the
/// byte-denominated seal threshold.
pub(crate) fn entry_bytes<const D: usize>() -> u64 {
    (16 + 8 + 2 * 8 * D + 8) as u64
}

/// A Hilbert-keyed in-memory rectangle buffer.
///
/// Insert-only: LSM deletes would be tombstones, which the paper's
/// workloads never need. Thread-safe — inserts serialize on an internal
/// writer lock; query scans share a read lock so concurrent readers
/// never queue behind each other.
pub struct Memtable<const D: usize> {
    entries: RwLock<Vec<Entry<D>>>,
    seq: AtomicU64,
    count: AtomicU64,
}

struct Entry<const D: usize> {
    key: u128,
    seq: u64,
    rect: Rect<D>,
    id: u64,
}

impl<const D: usize> Memtable<D> {
    /// An empty memtable.
    pub fn new() -> Self {
        Self {
            entries: RwLock::new(Vec::new()),
            seq: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Insert one rectangle. Equal Hilbert keys are disambiguated by an
    /// internal sequence number, so nothing is ever overwritten.
    pub fn insert(&self, rect: Rect<D>, id: u64) {
        let key = hilbert_index_f64(&center(&rect));
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.entries.write().push(Entry { key, seq, rect, id });
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint, for the seal threshold and gauge.
    pub fn approx_bytes(&self) -> u64 {
        self.len() * entry_bytes::<D>()
    }

    /// Every entry in Hilbert order — the drain input for a compaction.
    pub fn items_ordered(&self) -> Vec<(Rect<D>, u64)> {
        let g = self.entries.read();
        let mut order: Vec<usize> = (0..g.len()).collect();
        order.sort_unstable_by_key(|&i| (g[i].key, g[i].seq));
        order.into_iter().map(|i| (g[i].rect, g[i].id)).collect()
    }
}

impl<const D: usize> Default for Memtable<D> {
    fn default() -> Self {
        Self::new()
    }
}

fn center<const D: usize>(rect: &Rect<D>) -> [f64; D] {
    std::array::from_fn(|a| rect.center_coord(a))
}

impl<const D: usize> SpatialIndex<D> for Memtable<D> {
    fn for_each_intersecting(
        &self,
        query: &Rect<D>,
        visit: &mut dyn FnMut(Rect<D>, u64),
    ) -> rtree::Result<()> {
        for e in self.entries.read().iter() {
            if e.rect.intersects(query) {
                visit(e.rect, e.id);
            }
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        Memtable::len(self)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            backend: "memtable",
            len: Memtable::len(self),
            levels: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_is_hilbert_ordered_and_queries_scan() {
        let mt = Memtable::<2>::new();
        // Insert in reverse spatial order; the drain must be curve order.
        for i in (0..64u64).rev() {
            let x = (i % 8) as f64;
            let y = (i / 8) as f64;
            mt.insert(Rect::new([x, y], [x + 0.5, y + 0.5]), i);
        }
        assert_eq!(mt.len(), 64);
        let items = mt.items_ordered();
        let keys: Vec<u128> = items
            .iter()
            .map(|(r, _)| hilbert_index_f64(&center(r)))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "not curve-sorted");

        let idx: &dyn SpatialIndex<2> = &mt;
        let hits = idx.query(&Rect::new([0.0, 0.0], [1.75, 0.75])).unwrap();
        let mut got: Vec<u64> = hits.iter().map(|&(_, id)| id).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        assert_eq!(idx.stats().backend, "memtable");
    }

    #[test]
    fn duplicate_centers_are_kept() {
        let mt = Memtable::<2>::new();
        let r = Rect::new([1.0, 1.0], [2.0, 2.0]);
        mt.insert(r, 7);
        mt.insert(r, 8);
        assert_eq!(mt.len(), 2);
        assert_eq!(mt.items_ordered().len(), 2);
    }

    #[test]
    fn drain_order_is_stable_for_equal_keys() {
        let mt = Memtable::<2>::new();
        let r = Rect::new([3.0, 3.0], [4.0, 4.0]);
        for id in 0..8u64 {
            mt.insert(r, id);
        }
        let ids: Vec<u64> = mt.items_ordered().iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>(), "seq must break key ties");
    }
}
