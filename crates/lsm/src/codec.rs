//! Wire formats for the LSM tier: WAL note payloads and segment meta
//! pages.
//!
//! Everything here is little-endian and self-validating. Notes travel
//! inside the WAL's checksummed record frames, so they carry only a tag
//! byte; the segment meta page lives on a raw disk page and carries its
//! own FNV-1a header checksum plus a checksum of the segment bytes it
//! describes, so recovery can tell a committed segment from a torn one
//! without trusting the segment store.

use geom::Rect;
use storage::{fnv1a_update, PageId, FNV_SEED};

use crate::{LsmError, Result};

/// Note tag: a batch of acknowledged inserts (memtable redo).
pub const NOTE_INSERT: u8 = 1;
/// Note tag: a compaction's catalog flip (the commit point).
pub const NOTE_FLIP: u8 = 2;

/// Magic prefix of a segment meta page.
pub const SEGMENT_META_MAGIC: [u8; 4] = *b"SEGM";
/// Segment meta page format version.
pub const SEGMENT_META_VERSION: u16 = 1;
/// Fixed encoded size of a segment meta header (checksum included).
pub const SEGMENT_META_LEN: usize = 56;

/// A batch of inserts, logged before the memtable mutation so recovery
/// can replay exactly the acknowledged set.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertNote<const D: usize> {
    /// The rectangles and their opaque ids, in acknowledgement order.
    pub items: Vec<(Rect<D>, u64)>,
}

/// A compaction commit record: once this note's WAL commit frame is
/// durable, the flip MUST happen; before it, the flip MUST NOT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlipNote {
    /// Id of the newly packed segment.
    pub new_id: u64,
    /// Meta page describing the new segment.
    pub meta_page: PageId,
    /// WAL watermark: inserts with LSN <= this are covered by the flip.
    pub seal_lsn: u64,
    /// Segments the flip replaces: `(seg_id, meta_page)` pairs.
    pub removed: Vec<(u64, PageId)>,
}

/// Any LSM note payload, as scanned back out of the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum Note<const D: usize> {
    /// Acknowledged inserts to replay into the memtable.
    Insert(InsertNote<D>),
    /// A committed compaction to re-execute if the superblock missed it.
    Flip(FlipNote),
}

impl<const D: usize> InsertNote<D> {
    /// Serialize: tag, item count, then `2*D` coordinates + id per item.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + self.items.len() * (16 * D + 8));
        out.push(NOTE_INSERT);
        out.extend_from_slice(&(self.items.len() as u32).to_le_bytes());
        for (rect, id) in &self.items {
            for a in 0..D {
                out.extend_from_slice(&rect.lo(a).to_le_bytes());
            }
            for a in 0..D {
                out.extend_from_slice(&rect.hi(a).to_le_bytes());
            }
            out.extend_from_slice(&id.to_le_bytes());
        }
        out
    }
}

impl FlipNote {
    /// Serialize: tag, new segment triple, then the removed pairs.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(29 + self.removed.len() * 16);
        out.push(NOTE_FLIP);
        out.extend_from_slice(&self.new_id.to_le_bytes());
        out.extend_from_slice(&self.meta_page.0.to_le_bytes());
        out.extend_from_slice(&self.seal_lsn.to_le_bytes());
        out.extend_from_slice(&(self.removed.len() as u32).to_le_bytes());
        for (id, page) in &self.removed {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&page.0.to_le_bytes());
        }
        out
    }
}

/// Cursor over a note payload that fails loudly on truncation.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N]> {
        let end = self.at + N;
        if end > self.buf.len() {
            return Err(LsmError::Corrupt("truncated note payload".into()));
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take()?))
    }

    fn done(&self) -> Result<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(LsmError::Corrupt("trailing bytes after note".into()))
        }
    }
}

impl<const D: usize> Note<D> {
    /// Decode a note payload scanned from the WAL.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let tag = *buf
            .first()
            .ok_or_else(|| LsmError::Corrupt("empty note payload".into()))?;
        let mut r = Reader { buf, at: 1 };
        match tag {
            NOTE_INSERT => {
                let count = r.u32()? as usize;
                let mut items = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let mut lo = [0.0f64; D];
                    let mut hi = [0.0f64; D];
                    for l in lo.iter_mut() {
                        *l = r.f64()?;
                    }
                    for h in hi.iter_mut() {
                        *h = r.f64()?;
                    }
                    let id = r.u64()?;
                    let rect = Rect::try_new(lo, hi).map_err(|e| {
                        LsmError::Corrupt(format!("invalid rect in insert note: {e}"))
                    })?;
                    items.push((rect, id));
                }
                r.done()?;
                Ok(Note::Insert(InsertNote { items }))
            }
            NOTE_FLIP => {
                let new_id = r.u64()?;
                let meta_page = PageId(r.u64()?);
                let seal_lsn = r.u64()?;
                let count = r.u32()? as usize;
                let mut removed = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    let id = r.u64()?;
                    let page = PageId(r.u64()?);
                    removed.push((id, page));
                }
                r.done()?;
                Ok(Note::Flip(FlipNote {
                    new_id,
                    meta_page,
                    seal_lsn,
                    removed,
                }))
            }
            other => Err(LsmError::Corrupt(format!("unknown note tag {other}"))),
        }
    }
}

/// On-disk descriptor of one immutable flat segment.
///
/// Lives on its own meta page inside the v2 superblock catalog; the
/// catalog maps `seg-XXXXXXXX.flat` → this page, and this page pins the
/// exact bytes (length + FNV checksum) the segment store must serve.
/// A segment whose bytes disagree with its meta page is treated as
/// absent — recovery then re-executes or discards the flip that
/// introduced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment id (also encoded in the catalog entry name).
    pub seg_id: u64,
    /// Number of items packed into the segment.
    pub item_count: u64,
    /// Exact byte length of the flat-tree image.
    pub byte_len: u64,
    /// FNV-1a checksum of the flat-tree image.
    pub data_checksum: u64,
    /// WAL watermark the segment's contents cover.
    pub seal_lsn: u64,
}

impl SegmentMeta {
    /// Checksum the tier uses to pin segment bytes.
    pub fn checksum_of(bytes: &[u8]) -> u64 {
        fnv1a_update(FNV_SEED, bytes)
    }

    /// Describe `bytes` as the image of segment `seg_id`.
    pub fn describe(seg_id: u64, item_count: u64, seal_lsn: u64, bytes: &[u8]) -> Self {
        Self {
            seg_id,
            item_count,
            byte_len: bytes.len() as u64,
            data_checksum: Self::checksum_of(bytes),
            seal_lsn,
        }
    }

    /// Whether `bytes` are exactly the image this meta page pins.
    pub fn matches(&self, bytes: &[u8]) -> bool {
        bytes.len() as u64 == self.byte_len && Self::checksum_of(bytes) == self.data_checksum
    }

    /// Encode into a zero-padded page image of `page_size` bytes.
    pub fn encode_page(&self, page_size: usize) -> Vec<u8> {
        assert!(page_size >= SEGMENT_META_LEN, "page too small for meta");
        let mut out = vec![0u8; page_size];
        out[0..4].copy_from_slice(&SEGMENT_META_MAGIC);
        out[4..6].copy_from_slice(&SEGMENT_META_VERSION.to_le_bytes());
        // bytes 6..8 reserved (zero)
        out[8..16].copy_from_slice(&self.seg_id.to_le_bytes());
        out[16..24].copy_from_slice(&self.item_count.to_le_bytes());
        out[24..32].copy_from_slice(&self.byte_len.to_le_bytes());
        out[32..40].copy_from_slice(&self.data_checksum.to_le_bytes());
        out[40..48].copy_from_slice(&self.seal_lsn.to_le_bytes());
        let sum = fnv1a_update(FNV_SEED, &out[..48]);
        out[48..56].copy_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse and validate a meta page image.
    pub fn decode_page(page: &[u8]) -> Result<Self> {
        if page.len() < SEGMENT_META_LEN {
            return Err(LsmError::Corrupt("segment meta page too short".into()));
        }
        if page[0..4] != SEGMENT_META_MAGIC {
            return Err(LsmError::Corrupt("segment meta magic mismatch".into()));
        }
        let version = u16::from_le_bytes([page[4], page[5]]);
        if version != SEGMENT_META_VERSION {
            return Err(LsmError::Corrupt(format!(
                "unsupported segment meta version {version}"
            )));
        }
        let stored = u64::from_le_bytes(page[48..56].try_into().unwrap());
        let computed = fnv1a_update(FNV_SEED, &page[..48]);
        if stored != computed {
            return Err(LsmError::Corrupt("segment meta checksum mismatch".into()));
        }
        let u = |a: usize| u64::from_le_bytes(page[a..a + 8].try_into().unwrap());
        Ok(Self {
            seg_id: u(8),
            item_count: u(16),
            byte_len: u(24),
            data_checksum: u(32),
            seal_lsn: u(40),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_note_round_trips() {
        let note = InsertNote::<2> {
            items: vec![
                (Rect::new([0.0, 1.0], [2.0, 3.0]), 7),
                (Rect::new([-5.0, -5.0], [-1.0, -2.5]), u64::MAX),
            ],
        };
        let bytes = note.encode();
        match Note::<2>::decode(&bytes).unwrap() {
            Note::Insert(back) => assert_eq!(back, note),
            other => panic!("wrong variant: {other:?}"),
        }
        // Truncation and trailing garbage both fail loudly.
        assert!(Note::<2>::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(Note::<2>::decode(&long).is_err());
    }

    #[test]
    fn flip_note_round_trips() {
        let note = FlipNote {
            new_id: 3,
            meta_page: PageId(17),
            seal_lsn: 999,
            removed: vec![(1, PageId(5)), (2, PageId(9))],
        };
        match Note::<2>::decode(&note.encode()).unwrap() {
            Note::Flip(back) => assert_eq!(back, note),
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(Note::<2>::decode(&[42]).is_err());
        assert!(Note::<2>::decode(&[]).is_err());
    }

    #[test]
    fn segment_meta_round_trips_and_detects_corruption() {
        let bytes = b"flat tree image stand-in".to_vec();
        let meta = SegmentMeta::describe(11, 1000, 42, &bytes);
        assert!(meta.matches(&bytes));
        assert!(!meta.matches(b"different"));

        let page = meta.encode_page(4096);
        assert_eq!(SegmentMeta::decode_page(&page).unwrap(), meta);

        let mut flipped = page.clone();
        flipped[10] ^= 0xff;
        assert!(SegmentMeta::decode_page(&flipped).is_err());
        let mut wrong_magic = page.clone();
        wrong_magic[0] = b'X';
        assert!(SegmentMeta::decode_page(&wrong_magic).is_err());
        assert!(SegmentMeta::decode_page(&page[..40]).is_err());
    }
}
