//! Where segment bytes live: a small blob store keyed by segment id.
//!
//! Segments are immutable once written, so the store needs only
//! put/read/delete plus an explicit `sync` barrier — the compaction
//! protocol orders that barrier before the WAL flip note, which is what
//! makes the flip a commit point. The in-memory implementation models a
//! crash exactly like [`storage::MemLogStore`]: writes that were never
//! synced vanish on [`MemSegmentStore::lose_unsynced`], so the crash
//! harness can prove the protocol never depends on unsynced bytes.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use storage::{PageId, Result, StorageError, SyncClock};

/// Durable blob store for immutable flat segments.
pub trait SegmentStore: Send + Sync {
    /// Ids of every segment present, ascending.
    fn list(&self) -> Result<Vec<u64>>;
    /// Write (or overwrite) a segment's bytes. Not durable until
    /// [`sync`](Self::sync) returns.
    fn put(&self, id: u64, bytes: &[u8]) -> Result<()>;
    /// Read a segment's bytes in full. `Ok(None)` if absent.
    fn read(&self, id: u64) -> Result<Option<Vec<u8>>>;
    /// Remove a segment. Removing an absent id is fine.
    fn delete(&self, id: u64) -> Result<()>;
    /// Make every prior `put`/`delete` durable.
    fn sync(&self) -> Result<()>;
}

struct MemSegment {
    data: Vec<u8>,
    durable: bool,
}

/// In-memory segment store with crash semantics for tests.
pub struct MemSegmentStore {
    segs: Mutex<BTreeMap<u64, MemSegment>>,
    clock: Option<Arc<SyncClock>>,
}

impl MemSegmentStore {
    /// An empty store with no crash schedule.
    pub fn new() -> Self {
        Self {
            segs: Mutex::new(BTreeMap::new()),
            clock: None,
        }
    }

    /// An empty store whose syncs tick (and may trip) `clock`.
    pub fn with_clock(clock: Arc<SyncClock>) -> Self {
        Self {
            segs: Mutex::new(BTreeMap::new()),
            clock: Some(clock),
        }
    }

    /// Simulate the power cut: drop every segment that was never synced.
    /// Synced segments deleted-but-not-synced stay deleted — fail-stop
    /// deletion is the conservative direction for this store because
    /// recovery treats a missing segment as "flip not materialized".
    pub fn lose_unsynced(&self) {
        self.segs.lock().retain(|_, s| s.durable);
    }

    fn check_crashed(&self, op: &'static str) -> Result<()> {
        if let Some(clock) = &self.clock {
            if clock.is_crashed() {
                return Err(StorageError::FaultInjected { op, page: PageId(0) });
            }
        }
        Ok(())
    }
}

impl Default for MemSegmentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentStore for MemSegmentStore {
    fn list(&self) -> Result<Vec<u64>> {
        self.check_crashed("seg-list")?;
        Ok(self.segs.lock().keys().copied().collect())
    }

    fn put(&self, id: u64, bytes: &[u8]) -> Result<()> {
        self.check_crashed("seg-put")?;
        self.segs.lock().insert(
            id,
            MemSegment {
                data: bytes.to_vec(),
                durable: false,
            },
        );
        Ok(())
    }

    fn read(&self, id: u64) -> Result<Option<Vec<u8>>> {
        self.check_crashed("seg-read")?;
        Ok(self.segs.lock().get(&id).map(|s| s.data.clone()))
    }

    fn delete(&self, id: u64) -> Result<()> {
        self.check_crashed("seg-delete")?;
        self.segs.lock().remove(&id);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.check_crashed("seg-sync")?;
        for seg in self.segs.lock().values_mut() {
            seg.durable = true;
        }
        if let Some(clock) = &self.clock {
            clock.record_sync();
        }
        Ok(())
    }
}

/// File-backed segment store: one `seg-XXXXXXXX.flat` file per segment
/// in a directory, fsynced (file then directory) on `sync`.
pub struct FileSegmentStore {
    dir: PathBuf,
    dirty: Mutex<Vec<u64>>,
}

impl FileSegmentStore {
    /// Open (creating if needed) the store rooted at `dir`.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            dirty: Mutex::new(Vec::new()),
        })
    }

    fn path_for(&self, id: u64) -> PathBuf {
        self.dir.join(flat::segment_file_name(id))
    }

    fn sync_dir(&self) -> Result<()> {
        fs::File::open(&self.dir)?.sync_all()?;
        Ok(())
    }
}

impl SegmentStore for FileSegmentStore {
    fn list(&self) -> Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some(id) = name.to_str().and_then(flat::parse_segment_file_name) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn put(&self, id: u64, bytes: &[u8]) -> Result<()> {
        // Write-then-rename so a crash mid-put never leaves a segment
        // file with torn contents under its final name.
        let tmp = self.dir.join(format!(".{}.tmp", flat::segment_file_name(id)));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        fs::rename(&tmp, self.path_for(id))?;
        self.dirty.lock().push(id);
        Ok(())
    }

    fn read(&self, id: u64) -> Result<Option<Vec<u8>>> {
        match fs::read(self.path_for(id)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn delete(&self, id: u64) -> Result<()> {
        match fs::remove_file(self.path_for(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn sync(&self) -> Result<()> {
        let dirty: Vec<u64> = std::mem::take(&mut *self.dirty.lock());
        for id in dirty {
            // The file may have been deleted after the put; that is fine,
            // the directory fsync below covers the unlink.
            match fs::File::open(self.path_for(id)) {
                Ok(f) => f.sync_all()?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.sync_dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn SegmentStore) {
        assert!(store.list().unwrap().is_empty());
        store.put(3, b"ccc").unwrap();
        store.put(1, b"a").unwrap();
        store.sync().unwrap();
        assert_eq!(store.list().unwrap(), vec![1, 3]);
        assert_eq!(store.read(3).unwrap().unwrap(), b"ccc");
        assert_eq!(store.read(9).unwrap(), None);
        store.delete(3).unwrap();
        store.delete(9).unwrap();
        store.sync().unwrap();
        assert_eq!(store.list().unwrap(), vec![1]);
    }

    #[test]
    fn mem_store_basics() {
        exercise(&MemSegmentStore::new());
    }

    #[test]
    fn file_store_basics() {
        let dir = std::env::temp_dir().join(format!("segstore-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        exercise(&FileSegmentStore::open(&dir).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsynced_segments_vanish_on_crash() {
        let store = MemSegmentStore::new();
        store.put(1, b"synced").unwrap();
        store.sync().unwrap();
        store.put(2, b"lost").unwrap();
        store.lose_unsynced();
        assert_eq!(store.list().unwrap(), vec![1]);
        assert_eq!(store.read(2).unwrap(), None);
    }

    #[test]
    fn crashed_clock_fails_every_op() {
        let clock = SyncClock::new();
        let store = MemSegmentStore::with_clock(clock.clone());
        store.put(1, b"x").unwrap();
        clock.crash_after_nth_sync(0);
        store.sync().unwrap(); // this sync trips the crash
        assert!(store.put(2, b"y").is_err());
        assert!(store.sync().is_err());
        clock.revive();
        store.lose_unsynced();
        assert_eq!(store.list().unwrap(), vec![1]);
    }
}
