//! The composed LSM tree: one WAL-backed memtable plus N immutable
//! flat levels, with crash-safe compaction.
//!
//! # Commit protocol
//!
//! A compaction drains the sealed memtable (and, for a major
//! compaction, every existing level) through the out-of-core STR build
//! into one new flat segment, then commits it in this exact order:
//!
//! 1. segment bytes durable in the [`SegmentStore`] (`put` + `sync`);
//! 2. segment meta page written to the main disk and synced;
//! 3. flip note appended to the WAL and committed — **the commit
//!    point**;
//! 4. one superblock write ([`PageAllocator::flip_catalog`]) that adds
//!    the new catalog entry, drops the replaced ones, and advances the
//!    WAL watermark to the drained memtable's seal LSN, followed by a
//!    disk sync;
//! 5. in-memory flip, then cleanup (free replaced meta pages, delete
//!    replaced segment bytes, recycle fully-applied WAL segments).
//!
//! Recovery inverts the order: a flip note whose `seal_lsn` is above
//! the superblock watermark was committed but may have missed step 4,
//! so it is re-executed (steps 1–2 guarantee its inputs are durable); a
//! flip that never reached the log never happened, and its segment
//! bytes are garbage-collected as orphans. Insert notes above the final
//! watermark rebuild the memtable. The only thing a crash can leak is
//! meta pages: the new segment's page if the flip never committed, or
//! the victims' pages if the crash landed between the superblock flip
//! and cleanup (recovery deliberately never frees them — freeing a
//! page twice corrupts the allocator, leaking a few pages does not).
//! Bounded by one compaction's victims; never an acknowledged insert.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use geom::Rect;
use obs::{LazyCounter, LazyGauge, LazyHistogram};
use parking_lot::{Condvar, Mutex, RwLock};
use rtree::{IndexStats, NodeCapacity, SpatialIndex};
use storage::{
    truncate_torn_tail, wal::scan, Disk, LogStore, MemDisk, PageAllocator, PageId, Wal, WalOptions,
};
use str_core::{pack_str_external_to_flat, ExternalPackOptions};

use crate::codec::{FlipNote, InsertNote, Note, SegmentMeta};
use crate::memtable::Memtable;
use crate::segstore::SegmentStore;
use crate::{LsmError, Result};

static LSM_MEMTABLE_BYTES: LazyGauge = LazyGauge::new("lsm.memtable_bytes");
static LSM_COMPACTIONS: LazyCounter = LazyCounter::new("lsm.compactions");
static LSM_STALL_NS: LazyHistogram = LazyHistogram::new("lsm.stall_ns");

/// Tuning knobs for an [`LsmTree`].
#[derive(Debug, Clone, Copy)]
pub struct LsmOptions {
    /// Node fan-out for packed segments (the paper's page capacity).
    pub capacity: NodeCapacity,
    /// Seal the memtable once it holds this many items.
    pub memtable_items: u64,
    /// Maximum flat levels before a compaction goes major (drains every
    /// level plus the sealed memtable into one segment).
    pub max_levels: usize,
    /// Worker threads for the STR drain pipeline.
    pub threads: usize,
    /// Sort budget (records in memory) for the STR drain pipeline.
    pub drain_budget: usize,
    /// Run compactions on a background thread (`true`) or inline on the
    /// inserting thread (`false`; deterministic, used by crash tests).
    pub background: bool,
}

impl Default for LsmOptions {
    fn default() -> Self {
        Self {
            capacity: NodeCapacity::new(64).unwrap(),
            memtable_items: 4096,
            max_levels: 4,
            threads: 1,
            drain_budget: 1 << 15,
            background: false,
        }
    }
}

/// Point-in-time shape of an [`LsmTree`], for stats output and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmStats {
    /// Items in the active memtable.
    pub memtable_items: u64,
    /// Items in the sealed (compacting) memtable, if any.
    pub sealed_items: u64,
    /// Items across all flat levels.
    pub level_items: u64,
    /// Number of flat levels.
    pub levels: usize,
    /// Compactions committed since open.
    pub compactions: u64,
}

/// One immutable flat level.
struct Segment<const D: usize> {
    id: u64,
    meta_page: PageId,
    seal_lsn: u64,
    item_count: u64,
    tree: flat::FlatTree<'static, D>,
}

struct Sealed<const D: usize> {
    mem: Arc<Memtable<D>>,
    seal_lsn: u64,
}

struct State<const D: usize> {
    active: Arc<Memtable<D>>,
    sealed: Option<Sealed<D>>,
    levels: Vec<Arc<Segment<D>>>,
    next_seg_id: u64,
}

struct Signal {
    pending: bool,
    shutdown: bool,
}

struct Inner<const D: usize> {
    state: RwLock<State<D>>,
    alloc: Arc<PageAllocator>,
    disk: Arc<dyn Disk>,
    wal: Arc<Wal>,
    segs: Arc<dyn SegmentStore>,
    opts: LsmOptions,
    /// Serializes compactions end to end.
    compact_mx: Mutex<()>,
    /// Background-worker error, surfaced on the next foreground call.
    failed: Mutex<Option<String>>,
    signal: Mutex<Signal>,
    work_cv: Condvar,
    done_mx: Mutex<()>,
    done_cv: Condvar,
    compactions: AtomicU64,
}

/// A crash-safe spatial LSM tree: WAL-backed Hilbert memtable over
/// immutable STR-packed flat levels. See the module docs for the
/// commit protocol.
pub struct LsmTree<const D: usize> {
    inner: Arc<Inner<D>>,
    worker: Option<JoinHandle<()>>,
}

impl<const D: usize> LsmTree<D> {
    /// Open (or create) an LSM tree over the given devices, running
    /// recovery: re-execute the committed-but-unapplied flip if one
    /// exists, garbage-collect orphan segments, rebuild the memtable
    /// from insert notes past the watermark, and truncate any torn WAL
    /// tail.
    pub fn open(
        disk: Arc<dyn Disk>,
        log: Arc<dyn LogStore>,
        segs: Arc<dyn SegmentStore>,
        opts: LsmOptions,
    ) -> Result<Self> {
        let _tspan = obs::trace::span("lsm.open");
        let alloc = if disk.num_pages() == 0 {
            PageAllocator::format(disk.clone())?
        } else {
            PageAllocator::open(disk.clone())?
        };

        let scanned = scan(&*log)?;
        truncate_torn_tail(&*log, &scanned)?;

        // LSM transactions are note-only; page-image transactions in a
        // shared log belong to `storage::replay` and are skipped here.
        let mut inserts: Vec<(u64, InsertNote<D>)> = Vec::new();
        let mut flips: Vec<(u64, FlipNote)> = Vec::new();
        let mut max_seen_id = 0u64;
        for tx in &scanned.txns {
            for note in &tx.notes {
                match Note::<D>::decode(note)? {
                    Note::Insert(n) => inserts.push((tx.lsn, n)),
                    Note::Flip(f) => {
                        max_seen_id = max_seen_id.max(f.new_id);
                        for &(id, _) in &f.removed {
                            max_seen_id = max_seen_id.max(id);
                        }
                        flips.push((tx.lsn, f));
                    }
                }
            }
        }

        // Re-execute the committed flip the superblock missed. Seal
        // LSNs strictly increase across compactions and the watermark
        // advances with each applied flip, so at most the newest flip
        // can qualify.
        for (_, flip) in &flips {
            if flip.seal_lsn <= alloc.wal_applied_lsn() {
                continue;
            }
            let meta = read_meta_page(&disk, flip.meta_page)?;
            if meta.seg_id != flip.new_id {
                return Err(LsmError::Corrupt(format!(
                    "flip note names segment {} but meta page {} describes {}",
                    flip.new_id, flip.meta_page, meta.seg_id
                )));
            }
            let bytes = segs.read(flip.new_id)?.ok_or_else(|| {
                LsmError::Corrupt(format!(
                    "committed flip references missing segment {}",
                    flip.new_id
                ))
            })?;
            if !meta.matches(&bytes) {
                return Err(LsmError::Corrupt(format!(
                    "segment {} bytes disagree with committed meta page",
                    flip.new_id
                )));
            }
            let removes: Vec<String> = flip
                .removed
                .iter()
                .map(|&(id, _)| flat::segment_file_name(id))
                .collect();
            let remove_refs: Vec<&str> = removes.iter().map(String::as_str).collect();
            let name = flat::segment_file_name(flip.new_id);
            alloc.flip_catalog(
                &remove_refs,
                &[(&name, flip.meta_page)],
                Some(flip.seal_lsn),
            )?;
            disk.sync()?;
        }
        let watermark = alloc.wal_applied_lsn();

        // Load the levels the catalog now describes.
        let mut levels: Vec<Arc<Segment<D>>> = Vec::new();
        let mut live_ids: Vec<u64> = Vec::new();
        for entry in alloc.trees() {
            let Some(id) = flat::parse_segment_file_name(&entry.name) else {
                continue; // a paged tree sharing the disk, not ours
            };
            let meta = read_meta_page(&disk, entry.meta_page)?;
            let bytes = segs.read(id)?.ok_or_else(|| {
                LsmError::Corrupt(format!("catalog references missing segment {id}"))
            })?;
            if meta.seg_id != id || !meta.matches(&bytes) {
                return Err(LsmError::Corrupt(format!(
                    "segment {id} bytes disagree with its meta page"
                )));
            }
            let tree = flat::FlatTree::<D>::from_vec(bytes)?;
            live_ids.push(id);
            max_seen_id = max_seen_id.max(id);
            levels.push(Arc::new(Segment {
                id,
                meta_page: entry.meta_page,
                seal_lsn: meta.seal_lsn,
                item_count: meta.item_count,
                tree,
            }));
        }
        levels.sort_by_key(|s| s.seal_lsn);

        // Garbage-collect segments no committed flip owns (a crashed
        // compaction's half-finished output).
        let mut deleted_orphan = false;
        for id in segs.list()? {
            max_seen_id = max_seen_id.max(id);
            if !live_ids.contains(&id) {
                segs.delete(id)?;
                deleted_orphan = true;
            }
        }
        if deleted_orphan {
            segs.sync()?;
        }

        // Rebuild the memtable from acknowledged inserts the flipped
        // segments don't already cover.
        let active = Arc::new(Memtable::<D>::new());
        for (lsn, note) in &inserts {
            if *lsn > watermark {
                for &(rect, id) in &note.items {
                    active.insert(rect, id);
                }
            }
        }
        LSM_MEMTABLE_BYTES.set(active.approx_bytes() as i64);

        // A new log must start past every valid LSN on media, committed
        // or not, so old and new records can never stitch together.
        let wal = Wal::create(
            log,
            scanned.max_lsn.max(watermark) + 1,
            WalOptions::default(),
        )?;

        let inner = Arc::new(Inner {
            state: RwLock::new(State {
                active,
                sealed: None,
                levels,
                next_seg_id: max_seen_id + 1,
            }),
            alloc,
            disk,
            wal,
            segs,
            opts,
            compact_mx: Mutex::new(()),
            failed: Mutex::new(None),
            signal: Mutex::new(Signal {
                pending: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
            compactions: AtomicU64::new(0),
        });
        let worker = if opts.background {
            let w = inner.clone();
            Some(std::thread::spawn(move || worker_loop(&w)))
        } else {
            None
        };
        Ok(Self { inner, worker })
    }

    /// Insert one rectangle. Durable (WAL-committed) on return.
    pub fn insert(&self, rect: Rect<D>, id: u64) -> Result<()> {
        self.insert_batch(&[(rect, id)])
    }

    /// Insert a batch under one WAL note. Durable on return; the whole
    /// batch lands in one memtable generation, so a crash keeps either
    /// all of it or — if the commit never returned — possibly none.
    pub fn insert_batch(&self, items: &[(Rect<D>, u64)]) -> Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        self.check_failed()?;
        loop {
            {
                // Holding the state read lock across the note append and
                // the memtable insert pins the seal point: a seal (write
                // lock) observes either none or both, so its seal LSN
                // always covers exactly the items in the sealed memtable.
                let g = self.inner.state.read();
                if g.active.len() < self.inner.opts.memtable_items {
                    let payload = InsertNote {
                        items: items.to_vec(),
                    }
                    .encode();
                    let ticket = self.inner.wal.append_note(&payload)?;
                    for &(rect, id) in items {
                        g.active.insert(rect, id);
                    }
                    let bytes = g.active.approx_bytes();
                    drop(g);
                    LSM_MEMTABLE_BYTES.set(bytes as i64);
                    self.inner.wal.commit(ticket.lsn)?;
                    return Ok(());
                }
            }
            self.make_room()?;
        }
    }

    /// Seal and drain everything down to the flat levels. After this
    /// returns the memtable is empty and all data is segment-resident.
    pub fn flush(&self) -> Result<()> {
        loop {
            self.check_failed()?;
            self.inner.compact_once()?;
            let mut g = self.inner.state.write();
            if g.sealed.is_some() {
                drop(g);
                continue;
            }
            if g.active.is_empty() {
                return Ok(());
            }
            seal_locked(&self.inner, &mut g);
            drop(g);
        }
    }

    /// Run one compaction if a sealed memtable is waiting. Returns
    /// whether anything was drained. Mostly for tests and tools; the
    /// insert path triggers compaction by itself.
    pub fn compact_once(&self) -> Result<bool> {
        self.inner.compact_once()
    }

    /// Current shape.
    pub fn stats(&self) -> LsmStats {
        let g = self.inner.state.read();
        LsmStats {
            memtable_items: g.active.len(),
            sealed_items: g.sealed.as_ref().map_or(0, |s| s.mem.len()),
            level_items: g.levels.iter().map(|s| s.item_count).sum(),
            levels: g.levels.len(),
            compactions: self.inner.compactions.load(Ordering::Relaxed),
        }
    }

    fn check_failed(&self) -> Result<()> {
        match &*self.inner.failed.lock() {
            Some(msg) => Err(LsmError::Corrupt(format!(
                "background compaction failed: {msg}"
            ))),
            None => Ok(()),
        }
    }

    /// The memtable is full: seal it, or stall until the compactor
    /// frees the sealed slot.
    fn make_room(&self) -> Result<()> {
        {
            let mut g = self.inner.state.write();
            if g.active.len() < self.inner.opts.memtable_items {
                return Ok(()); // someone else already sealed
            }
            if g.sealed.is_none() {
                seal_locked(&self.inner, &mut g);
                drop(g);
                return self.kick();
            }
        }
        // Both memtable slots full: the ingest stall the paper's
        // sustained-insert benchmark measures.
        let _stall = LSM_STALL_NS.start();
        if self.inner.opts.background {
            let mut dg = self.inner.done_mx.lock();
            while self.inner.state.read().sealed.is_some() {
                if self.inner.failed.lock().is_some() {
                    break;
                }
                self.inner.done_cv.wait(&mut dg);
            }
            drop(dg);
            self.check_failed()?;
        } else {
            self.inner.compact_once()?;
        }
        Ok(())
    }

    fn kick(&self) -> Result<()> {
        if self.inner.opts.background {
            let mut s = self.inner.signal.lock();
            s.pending = true;
            self.inner.work_cv.notify_one();
            Ok(())
        } else {
            self.inner.compact_once().map(|_| ())
        }
    }
}

impl<const D: usize> Drop for LsmTree<D> {
    fn drop(&mut self) {
        if let Some(handle) = self.worker.take() {
            {
                let mut s = self.inner.signal.lock();
                s.shutdown = true;
                self.inner.work_cv.notify_all();
            }
            let _ = handle.join();
        }
    }
}

/// Seal the active memtable. Caller holds the state write lock and has
/// checked `sealed` is vacant; the sealed slot's LSN is read under the
/// same lock, so it bounds exactly the inserts already in the memtable.
fn seal_locked<const D: usize>(inner: &Inner<D>, g: &mut State<D>) {
    debug_assert!(g.sealed.is_none());
    let seal_lsn = inner.wal.last_lsn();
    let full = std::mem::replace(&mut g.active, Arc::new(Memtable::new()));
    g.sealed = Some(Sealed {
        mem: full,
        seal_lsn,
    });
    LSM_MEMTABLE_BYTES.set(0);
}

fn worker_loop<const D: usize>(inner: &Arc<Inner<D>>) {
    loop {
        {
            let mut s = inner.signal.lock();
            while !s.pending && !s.shutdown {
                inner.work_cv.wait(&mut s);
            }
            if s.shutdown {
                return;
            }
            s.pending = false;
        }
        if let Err(e) = inner.compact_once() {
            *inner.failed.lock() = Some(e.to_string());
            // Wake stalled writers so they can observe the failure
            // instead of waiting for a drain that will never come.
            let _g = inner.done_mx.lock();
            inner.done_cv.notify_all();
        }
    }
}

fn read_meta_page(disk: &Arc<dyn Disk>, page: PageId) -> Result<SegmentMeta> {
    let mut buf = vec![0u8; disk.page_size()];
    disk.read_page(page, &mut buf)?;
    SegmentMeta::decode_page(&buf)
}

impl<const D: usize> Inner<D> {
    /// Drain the sealed memtable (plus every level, when at the level
    /// cap) into one new flat segment and commit it. See the module
    /// docs for the ordering argument.
    fn compact_once(&self) -> Result<bool> {
        let _serial = self.compact_mx.lock();
        let _tspan = obs::trace::span("lsm.compact");

        let (mem, seal_lsn, victims, new_id) = {
            let g = self.state.read();
            let Some(sealed) = &g.sealed else {
                return Ok(false);
            };
            let major = g.levels.len() + 1 > self.opts.max_levels;
            let victims: Vec<Arc<Segment<D>>> = if major { g.levels.clone() } else { Vec::new() };
            (sealed.mem.clone(), sealed.seal_lsn, victims, g.next_seg_id)
        };

        let mut items = mem.items_ordered();
        for seg in &victims {
            items.extend(seg.tree.items());
        }
        let item_count = items.len() as u64;
        if item_count == 0 {
            // Nothing to pack (a defensive case: seals are triggered by
            // fullness or a non-empty flush). Just clear the slot.
            let mut g = self.state.write();
            g.sealed = None;
            drop(g);
            self.notify_done();
            return Ok(true);
        }

        let bytes = {
            let _dspan = obs::trace::span("lsm.drain");
            let scratch: Arc<dyn Disk> = Arc::new(MemDisk::default_size());
            pack_str_external_to_flat::<D, _>(
                scratch,
                items,
                self.opts.capacity,
                ExternalPackOptions {
                    budget: self.opts.drain_budget,
                    threads: self.opts.threads,
                },
            )?
        };

        // (1) Segment bytes durable before anything references them.
        self.segs.put(new_id, &bytes)?;
        self.segs.sync()?;

        // (2) Meta page durable before the flip note names it.
        let meta_page = self.alloc.allocate()?;
        let meta = SegmentMeta::describe(new_id, item_count, seal_lsn, &bytes);
        self.disk
            .write_page(meta_page, &meta.encode_page(self.disk.page_size()))?;
        self.disk.sync()?;

        let flip = FlipNote {
            new_id,
            meta_page,
            seal_lsn,
            removed: victims.iter().map(|s| (s.id, s.meta_page)).collect(),
        };
        {
            let _fspan = obs::trace::span("lsm.flip");
            // (3) The commit point: once this note is durable the flip
            // happens — now, or during recovery.
            let ticket = self.wal.append_note(&flip.encode())?;
            self.wal.commit(ticket.lsn)?;
            // (4) One superblock write makes it visible to opens.
            let name = flat::segment_file_name(new_id);
            let removes: Vec<String> = victims
                .iter()
                .map(|s| flat::segment_file_name(s.id))
                .collect();
            let remove_refs: Vec<&str> = removes.iter().map(String::as_str).collect();
            self.alloc
                .flip_catalog(&remove_refs, &[(&name, meta_page)], Some(seal_lsn))?;
            self.disk.sync()?;
        }

        // (5) In-memory flip, then cleanup.
        let tree = flat::FlatTree::<D>::from_vec(bytes)?;
        {
            let mut g = self.state.write();
            g.sealed = None;
            if !victims.is_empty() {
                g.levels.clear();
            }
            g.levels.push(Arc::new(Segment {
                id: new_id,
                meta_page,
                seal_lsn,
                item_count,
                tree,
            }));
            g.next_seg_id = new_id + 1;
        }
        LSM_COMPACTIONS.inc();
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.notify_done();

        let freed: Vec<PageId> = flip.removed.iter().map(|&(_, p)| p).collect();
        if !freed.is_empty() {
            self.alloc.free_pages(&freed)?;
            for &(id, _) in &flip.removed {
                self.segs.delete(id)?;
            }
            self.segs.sync()?;
        }
        self.wal.recycle(seal_lsn)?;
        Ok(true)
    }

    fn notify_done(&self) {
        let _g = self.done_mx.lock();
        self.done_cv.notify_all();
    }
}

impl<const D: usize> SpatialIndex<D> for LsmTree<D> {
    fn for_each_intersecting(
        &self,
        query: &Rect<D>,
        visit: &mut dyn FnMut(Rect<D>, u64),
    ) -> rtree::Result<()> {
        // Snapshot the component set under the lock, query outside it:
        // a concurrent flip atomically moves items between components,
        // so one consistent snapshot sees every item exactly once.
        let (active, sealed, levels) = {
            let g = self.inner.state.read();
            (
                g.active.clone(),
                g.sealed.as_ref().map(|s| s.mem.clone()),
                g.levels.clone(),
            )
        };
        active.for_each_intersecting(query, visit)?;
        if let Some(mem) = sealed {
            mem.for_each_intersecting(query, visit)?;
        }
        for seg in levels {
            seg.tree.for_each_in_region(query, |rect, id| visit(rect, id));
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        let g = self.inner.state.read();
        g.active.len()
            + g.sealed.as_ref().map_or(0, |s| s.mem.len())
            + g.levels.iter().map(|s| s.item_count).sum::<u64>()
    }

    fn stats(&self) -> IndexStats {
        let g = self.inner.state.read();
        IndexStats {
            backend: "lsm",
            len: g.active.len()
                + g.sealed.as_ref().map_or(0, |s| s.mem.len())
                + g.levels.iter().map(|s| s.item_count).sum::<u64>(),
            levels: (1 + g.levels.len()) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segstore::MemSegmentStore;
    use storage::MemLogStore;

    fn small_opts() -> LsmOptions {
        LsmOptions {
            memtable_items: 32,
            max_levels: 2,
            ..LsmOptions::default()
        }
    }

    fn open_mem(opts: LsmOptions) -> (LsmTree<2>, Arc<dyn Disk>, Arc<dyn LogStore>, Arc<dyn SegmentStore>) {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::default_size());
        let log: Arc<dyn LogStore> = MemLogStore::new();
        let segs: Arc<dyn SegmentStore> = Arc::new(MemSegmentStore::new());
        let tree = LsmTree::open(disk.clone(), log.clone(), segs.clone(), opts).unwrap();
        (tree, disk, log, segs)
    }

    fn rect_for(i: u64) -> Rect<2> {
        let x = (i % 97) as f64;
        let y = (i / 97) as f64;
        Rect::new([x, y], [x + 0.5, y + 0.5])
    }

    #[test]
    fn inserts_compact_into_levels_and_stay_queryable() {
        let (tree, _, _, _) = open_mem(small_opts());
        for i in 0..200u64 {
            tree.insert(rect_for(i), i).unwrap();
        }
        let st = tree.stats();
        assert!(st.compactions >= 1, "expected at least one compaction");
        assert!(st.levels <= 2, "level cap violated: {st:?}");
        assert_eq!(SpatialIndex::len(&tree), 200);

        // Every item answers a point-ish query against the full set.
        let idx: &dyn SpatialIndex<2> = &tree;
        for i in (0..200u64).step_by(23) {
            let hits = idx.query(&rect_for(i)).unwrap();
            assert!(
                hits.iter().any(|&(_, id)| id == i),
                "item {i} missing from query"
            );
        }
    }

    #[test]
    fn reopen_recovers_memtable_and_levels() {
        let opts = small_opts();
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::default_size());
        let log: Arc<dyn LogStore> = MemLogStore::new();
        let segs: Arc<dyn SegmentStore> = Arc::new(MemSegmentStore::new());
        {
            let tree = LsmTree::<2>::open(disk.clone(), log.clone(), segs.clone(), opts).unwrap();
            for i in 0..100u64 {
                tree.insert(rect_for(i), i).unwrap();
            }
        }
        let tree = LsmTree::<2>::open(disk, log, segs, opts).unwrap();
        assert_eq!(SpatialIndex::len(&tree), 100);
        let idx: &dyn SpatialIndex<2> = &tree;
        for i in 0..100u64 {
            let hits = idx.query(&rect_for(i)).unwrap();
            assert!(hits.iter().any(|&(_, id)| id == i), "item {i} lost");
        }
    }

    #[test]
    fn flush_drains_everything_to_segments() {
        let (tree, _, _, _) = open_mem(small_opts());
        for i in 0..50u64 {
            tree.insert(rect_for(i), i).unwrap();
        }
        tree.flush().unwrap();
        let st = tree.stats();
        assert_eq!(st.memtable_items, 0);
        assert_eq!(st.sealed_items, 0);
        assert_eq!(st.level_items, 50);
        assert_eq!(SpatialIndex::len(&tree), 50);
    }

    #[test]
    fn background_mode_keeps_ingest_correct() {
        let opts = LsmOptions {
            background: true,
            ..small_opts()
        };
        let (tree, _, _, _) = open_mem(opts);
        let tree = Arc::new(tree);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tree = tree.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    tree.insert(rect_for(t * 1000 + i), t * 1000 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(SpatialIndex::len(&*tree), 400);
        tree.flush().unwrap();
        assert_eq!(SpatialIndex::len(&*tree), 400);
    }
}
